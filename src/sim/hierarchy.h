// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Two-tier CDN simulation: edge servers redirect their cache misses to a
// shared parent ("a higher level, larger serving site in a cache hierarchy,
// which captures redirects of its downstream servers", Sec. 2). This
// implements the paper's future-work direction of CDN-wide operation on top
// of per-server alpha_F2R-governed caches (Sec. 10).
//
// Mechanics: each edge replays its own trace; every redirected request is
// forwarded (same timestamp) to the parent, whose request stream is the
// time-ordered merge of all edge redirects. Whatever the parent redirects is
// served by the origin. The CDN-wide cost charges edge fills, parent fills
// and origin-served bytes with configurable per-tier costs.
//
// Parallel mode (threads != 1): the independent edge replays shard across an
// exec::ThreadPool; everything that touches the shared second tier -- the
// redirect accumulator and the parent replay itself -- is serialized through
// an exec::Strand. Results are bit-identical to the sequential run for any
// thread count: redirects are tagged (edge, sequence) and merged by
// (arrival time, edge, sequence), exactly the order the sequential
// stable_sort produces. See docs/PARALLELISM.md.
//
// Fault injection (config.faults, see docs/FAULTS.md): the defense lines
// degrade tier by tier. An edge-outage window turns that edge's requests
// into Decision::kUnavailable -- origin-served directly, charged
// outage_penalty per byte. A parent-outage window makes edge redirects fall
// through to the origin at the merge step (they never enter the parent
// cache), same penalty. Disk-degrade windows Resize() the target cache and
// cold restarts DropContents() it, both inside the per-edge replay. Origin
// inflation scales the cost of every origin-served byte during its window.
// All of it is clocked by request arrival times, so results stay
// bit-identical across thread counts.

#ifndef VCDN_SRC_SIM_HIERARCHY_H_
#define VCDN_SRC_SIM_HIERARCHY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/cache_algorithm.h"
#include "src/core/cache_factory.h"
#include "src/exec/thread_pool.h"
#include "src/sim/replay.h"
#include "src/trace/request.h"

namespace vcdn::sim {

struct HierarchyConfig {
  core::CacheKind edge_kind = core::CacheKind::kCafe;
  core::CacheConfig edge_config;
  core::CacheKind parent_kind = core::CacheKind::kCafe;
  core::CacheConfig parent_config;  // typically a deeper cache, lower alpha
  // observer/on_outcome must be unset (the hierarchy owns the replay loop);
  // metrics/trace_sink receive the edge recordings merged in edge order,
  // then the parent's.
  ReplayOptions replay;
  // Edge-replay worker count: 1 (default) runs sequentially on the calling
  // thread, 0 selects hardware concurrency.
  size_t threads = 1;
  // Run on an existing pool instead of building one (threads then ignored).
  exec::ThreadPool* pool = nullptr;

  // Optional fault schedule (must outlive the run). Edge index i is fault
  // target i; the parent is fault::kParentTarget. replay.faults must stay
  // unset -- the hierarchy owns the wiring.
  const fault::FaultSchedule* faults = nullptr;
  // Cost multiplier for each byte the origin serves because a CDN tier was
  // down (relative to a normal origin byte): emergency origin capacity is
  // more expensive than planned redirects.
  double outage_penalty = 2.0;
};

struct HierarchyResult {
  std::vector<ReplayResult> edges;
  ReplayResult parent;

  // CDN-wide steady-state aggregates.
  uint64_t requested_bytes = 0;      // user demand at the edges
  uint64_t edge_served_bytes = 0;    // served directly by an edge
  uint64_t edge_filled_bytes = 0;    // edge ingress
  uint64_t parent_served_bytes = 0;  // edge misses absorbed by the parent
  uint64_t parent_filled_bytes = 0;  // parent ingress (from origin)
  // Served by the origin: parent redirects plus all outage fallbacks, so
  // edge_served + parent_served + origin == requested still holds under
  // fault injection.
  uint64_t origin_bytes = 0;

  // Fraction of user demand that never left the CDN's edge tier / the CDN.
  double edge_hit_fraction = 0.0;
  double cdn_hit_fraction = 0.0;

  // --- degraded-mode accounting (zero without fault injection) ---
  // Steady-state bytes origin-served because an edge was down...
  uint64_t edge_unavailable_bytes = 0;
  // ...and because the parent was down when an edge redirect arrived.
  uint64_t parent_outage_bytes = 0;
  // Fraction of steady-state demand served without an outage fallback.
  double availability = 1.0;
  // Steady-state origin cost: every origin-served byte weighted by the
  // schedule's origin inflation at its arrival time, outage fallbacks
  // additionally by outage_penalty. (requested-byte units; 1.0 per normal
  // origin byte.)
  double origin_cost = 0.0;
  // Whole-run, per replay bucket: origin bytes due to outage fallbacks
  // (edge outages + parent fallthrough). Shows the origin absorbing a
  // defense line's traffic during a window and recovering after it.
  std::vector<double> outage_origin_series;
  // Summed fault-driver accounting across edges and parent (whole run).
  fault::FaultStats faults;
};

// Runs the two-tier simulation over one trace per edge server.
HierarchyResult RunHierarchy(const std::vector<trace::Trace>& edge_traces,
                             const HierarchyConfig& config);

// Streaming variant: one request-stream factory per edge, each invoked on
// its edge's worker, so no edge trace is ever materialized (redirects --
// a small fraction of edge traffic -- still materialize for the parent
// tier's merged replay). Bit-identical to the trace overload fed with the
// equivalent materialized traces. Edge caches must be online
// (CacheAlgorithm::requires_full_trace() == false).
HierarchyResult RunHierarchy(const std::vector<StreamFactory>& edge_streams,
                             const HierarchyConfig& config);

}  // namespace vcdn::sim

#endif  // VCDN_SRC_SIM_HIERARCHY_H_
