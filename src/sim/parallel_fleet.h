// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Parallel fleet replay: shards a multi-server experiment -- one independent
// CacheAlgorithm + trace per server, the shape of the paper's Sec. 9
// evaluation (Fig. 7 replays six servers around the world) -- across an
// exec::ThreadPool.
//
// Determinism contract (tested by sim_parallel_fleet_test, documented in
// docs/PARALLELISM.md): RunFleet's totals, steady-state windows, time
// series, efficiency numbers and merged metrics registry are bit-identical
// to running sim::Replay over the servers sequentially in order, for any
// thread count and any scheduling. This holds because each shard is a pure
// function of (cache kind, config, trace), shards share no mutable state,
// and all merging -- result vector, ReplayTotals sums, registry MergeFrom,
// trace-sink Append -- happens after the join in server order. Only
// wall-clock fields (wall_seconds, requests_per_second, span timings) vary
// between runs; they vary for sequential replays too.

#ifndef VCDN_SRC_SIM_PARALLEL_FLEET_H_
#define VCDN_SRC_SIM_PARALLEL_FLEET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/cache_factory.h"
#include "src/exec/thread_pool.h"
#include "src/sim/replay.h"

namespace vcdn::sim {

// One server shard: an independent cache replaying its own request source.
// Exactly one of `trace` (materialized) or `stream` (streaming: generated
// lookahead, mmap'd trace file, ...) must be set. A stream factory runs on
// the shard's worker; if it builds a GeneratedStream with a generator pool,
// that pool must NOT be the one replaying the fleet (see
// src/trace/generated_stream.h on the deadlock hazard).
struct FleetServer {
  std::string name;  // label for trace lanes and reports
  core::CacheKind kind = core::CacheKind::kCafe;
  core::CacheConfig config;
  const trace::Trace* trace = nullptr;  // not owned; must outlive RunFleet
  StreamFactory stream;                 // streaming alternative to `trace`
};

struct FleetOptions {
  // Worker count: 0 selects hardware concurrency; 1 replays the shards
  // inline on the calling thread (the sequential reference, no pool built).
  size_t threads = 0;
  // Run on an existing pool instead of building one (threads is then
  // ignored). The pool's own obs instruments keep working.
  exec::ThreadPool* pool = nullptr;
  // Per-shard replay parameters. metrics/trace_sink receive the
  // deterministic in-order merge of per-shard recordings (each shard's
  // events land on trace lane obs::kFleetTidBase + shard index). observer
  // and on_outcome must be unset: they would be invoked concurrently.
  // replay.faults applies per shard with fault target = shard index
  // (replay.fault_target is overwritten); see docs/FAULTS.md.
  ReplayOptions replay;
};

struct FleetResult {
  std::vector<ReplayResult> servers;  // in FleetServer order
  // Fleet-wide sums of the per-server whole-run / steady-state totals.
  ReplayTotals totals;
  ReplayTotals steady;
  // Wall clock of the whole fleet run (trace generation excluded) and the
  // worker count actually used.
  double wall_seconds = 0.0;
  size_t threads = 1;
};

// Replays every server shard and merges the results in server order.
FleetResult RunFleet(const std::vector<FleetServer>& servers, const FleetOptions& options = {});

// FNV-1a digest over every deterministic field of the result (per-server
// totals, steady windows, series, efficiency summaries; wall-clock fields
// excluded). Equal digests across thread counts are the cheap determinism
// check printed by the benches.
uint64_t FleetDigest(const FleetResult& result);

}  // namespace vcdn::sim

#endif  // VCDN_SRC_SIM_PARALLEL_FLEET_H_
