// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/lp/model.h"

#include <algorithm>

namespace vcdn::lp {

int32_t Model::AddVariable(double lower, double upper, double objective) {
  VCDN_CHECK(lower <= upper);
  objective_.push_back(objective);
  column_lower_.push_back(lower);
  column_upper_.push_back(upper);
  return static_cast<int32_t>(objective_.size()) - 1;
}

int32_t Model::AddRow(double lower, double upper) {
  VCDN_CHECK(lower <= upper);
  row_lower_.push_back(lower);
  row_upper_.push_back(upper);
  return static_cast<int32_t>(row_lower_.size()) - 1;
}

void Model::AddCoefficient(int32_t row, int32_t column, double value) {
  VCDN_CHECK(row >= 0 && row < num_rows());
  VCDN_CHECK(column >= 0 && column < num_columns());
  if (value == 0.0) {
    return;
  }
  entries_.push_back(SparseEntry{row, column, value});
}

CompiledModel Model::Compile() const {
  CompiledModel compiled;
  compiled.num_rows = num_rows();
  compiled.num_columns = num_columns();
  compiled.objective = objective_;
  compiled.column_lower = column_lower_;
  compiled.column_upper = column_upper_;
  compiled.row_lower = row_lower_;
  compiled.row_upper = row_upper_;

  // Sort triplets column-major and merge duplicates.
  std::vector<SparseEntry> sorted = entries_;
  std::sort(sorted.begin(), sorted.end(), [](const SparseEntry& a, const SparseEntry& b) {
    if (a.column != b.column) {
      return a.column < b.column;
    }
    return a.row < b.row;
  });

  compiled.column_start.assign(static_cast<size_t>(compiled.num_columns) + 1, 0);
  compiled.row_index.reserve(sorted.size());
  compiled.value.reserve(sorted.size());
  size_t i = 0;
  for (int32_t col = 0; col < compiled.num_columns; ++col) {
    compiled.column_start[static_cast<size_t>(col)] =
        static_cast<int64_t>(compiled.row_index.size());
    while (i < sorted.size() && sorted[i].column == col) {
      int32_t row = sorted[i].row;
      double sum = 0.0;
      while (i < sorted.size() && sorted[i].column == col && sorted[i].row == row) {
        sum += sorted[i].value;
        ++i;
      }
      if (sum != 0.0) {
        compiled.row_index.push_back(row);
        compiled.value.push_back(sum);
      }
    }
  }
  compiled.column_start[static_cast<size_t>(compiled.num_columns)] =
      static_cast<int64_t>(compiled.row_index.size());
  return compiled;
}

}  // namespace vcdn::lp
