// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/util/check.h"

namespace vcdn::lp {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

const char* SolveStatusName(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal:
      return "OPTIMAL";
    case SolveStatus::kInfeasible:
      return "INFEASIBLE";
    case SolveStatus::kUnbounded:
      return "UNBOUNDED";
    case SolveStatus::kIterationLimit:
      return "ITERATION_LIMIT";
    case SolveStatus::kNumericalFailure:
      return "NUMERICAL_FAILURE";
  }
  return "UNKNOWN";
}

// The working state of one solve. Variables are indexed 0..n-1 (structural)
// and n..n+m-1 (logical; logical j represents row j-n with column -e_{j-n}).
class SimplexSolver::Impl {
 public:
  Impl(const CompiledModel& model, const SimplexOptions& options)
      : model_(model),
        options_(options),
        m_(model.num_rows),
        n_(model.num_columns),
        total_(model.num_columns + model.num_rows) {}

  Solution Run();

 private:
  enum class VarStatus : uint8_t { kBasic, kAtLower, kAtUpper, kFreeZero };

  double LowerOf(int32_t var) const {
    return var < n_ ? model_.column_lower[static_cast<size_t>(var)]
                    : model_.row_lower[static_cast<size_t>(var - n_)];
  }
  double UpperOf(int32_t var) const {
    return var < n_ ? model_.column_upper[static_cast<size_t>(var)]
                    : model_.row_upper[static_cast<size_t>(var - n_)];
  }
  double CostOf(int32_t var) const {
    return var < n_ ? model_.objective[static_cast<size_t>(var)] : 0.0;
  }

  // y += coef * column(var), on a dense m-vector.
  void AddColumn(std::vector<double>& y, int32_t var, double coef) const;
  // Dot product of a dense m-vector with column(var).
  double DotColumn(const std::vector<double>& y, int32_t var) const;

  void SetupInitialBasis();
  // ftran: out = Binv * column(var).
  void Ftran(int32_t var, std::vector<double>& out) const;
  // btran: out = Binv^T * in  (i.e., out = in' * Binv).
  void Btran(const std::vector<double>& in, std::vector<double>& out) const;

  // Rebuilds Binv from the current basis columns. False on singular basis.
  bool Refactorize();
  // Recomputes basic variable values from nonbasic values.
  void RecomputeBasicValues();
  // Max |A x - s| residual over all rows.
  double Residual() const;

  double InfeasibilityOf(int32_t var) const {
    double v = value_[static_cast<size_t>(var)];
    double lo = LowerOf(var);
    double hi = UpperOf(var);
    if (v < lo - options_.tolerance) {
      return lo - v;
    }
    if (v > hi + options_.tolerance) {
      return v - hi;
    }
    return 0.0;
  }
  double TotalInfeasibility() const;

  // One simplex iteration. phase1: use composite infeasibility costs.
  // Returns false when no improving direction exists (optimal for the phase).
  enum class StepResult { kPivoted, kBoundFlip, kNoDirection, kUnbounded, kNumericalFailure };
  StepResult Iterate(bool phase1, bool bland);

  const CompiledModel& model_;
  SimplexOptions options_;
  int32_t m_;
  int32_t n_;
  int32_t total_;

  std::vector<double> value_;          // all variables
  std::vector<VarStatus> status_;      // all variables
  std::vector<int32_t> basic_var_;     // basis position -> variable
  std::vector<int32_t> basis_pos_;     // variable -> basis position or -1
  std::vector<double> binv_;           // dense m x m, row-major
  int64_t iterations_ = 0;
  int64_t refactorizations_ = 0;

  // Scratch buffers.
  std::vector<double> ftran_;
  std::vector<double> cost_b_;
  std::vector<double> y_;
};

void SimplexSolver::Impl::AddColumn(std::vector<double>& y, int32_t var, double coef) const {
  if (var >= n_) {
    y[static_cast<size_t>(var - n_)] -= coef;  // logical column is -e_row
    return;
  }
  auto begin = static_cast<size_t>(model_.column_start[static_cast<size_t>(var)]);
  auto end = static_cast<size_t>(model_.column_start[static_cast<size_t>(var) + 1]);
  for (size_t k = begin; k < end; ++k) {
    y[static_cast<size_t>(model_.row_index[k])] += coef * model_.value[k];
  }
}

double SimplexSolver::Impl::DotColumn(const std::vector<double>& y, int32_t var) const {
  if (var >= n_) {
    return -y[static_cast<size_t>(var - n_)];
  }
  double sum = 0.0;
  auto begin = static_cast<size_t>(model_.column_start[static_cast<size_t>(var)]);
  auto end = static_cast<size_t>(model_.column_start[static_cast<size_t>(var) + 1]);
  for (size_t k = begin; k < end; ++k) {
    sum += y[static_cast<size_t>(model_.row_index[k])] * model_.value[k];
  }
  return sum;
}

void SimplexSolver::Impl::SetupInitialBasis() {
  value_.assign(static_cast<size_t>(total_), 0.0);
  status_.assign(static_cast<size_t>(total_), VarStatus::kAtLower);
  basic_var_.resize(static_cast<size_t>(m_));
  basis_pos_.assign(static_cast<size_t>(total_), -1);

  // Structural variables start nonbasic at their "best" finite bound.
  for (int32_t j = 0; j < n_; ++j) {
    double lo = LowerOf(j);
    double hi = UpperOf(j);
    if (std::isfinite(lo)) {
      status_[static_cast<size_t>(j)] = VarStatus::kAtLower;
      value_[static_cast<size_t>(j)] = lo;
    } else if (std::isfinite(hi)) {
      status_[static_cast<size_t>(j)] = VarStatus::kAtUpper;
      value_[static_cast<size_t>(j)] = hi;
    } else {
      status_[static_cast<size_t>(j)] = VarStatus::kFreeZero;
      value_[static_cast<size_t>(j)] = 0.0;
    }
  }
  // Logicals form the initial basis; B = -I so Binv = -I.
  binv_.assign(static_cast<size_t>(m_) * static_cast<size_t>(m_), 0.0);
  for (int32_t i = 0; i < m_; ++i) {
    int32_t var = n_ + i;
    basic_var_[static_cast<size_t>(i)] = var;
    basis_pos_[static_cast<size_t>(var)] = i;
    status_[static_cast<size_t>(var)] = VarStatus::kBasic;
    binv_[static_cast<size_t>(i) * static_cast<size_t>(m_) + static_cast<size_t>(i)] = -1.0;
  }
  RecomputeBasicValues();
}

void SimplexSolver::Impl::Ftran(int32_t var, std::vector<double>& out) const {
  out.assign(static_cast<size_t>(m_), 0.0);
  if (var >= n_) {
    // Column is -e_r: out = -Binv[:, r].
    size_t r = static_cast<size_t>(var - n_);
    for (size_t i = 0; i < static_cast<size_t>(m_); ++i) {
      out[i] = -binv_[i * static_cast<size_t>(m_) + r];
    }
    return;
  }
  auto begin = static_cast<size_t>(model_.column_start[static_cast<size_t>(var)]);
  auto end = static_cast<size_t>(model_.column_start[static_cast<size_t>(var) + 1]);
  for (size_t k = begin; k < end; ++k) {
    size_t r = static_cast<size_t>(model_.row_index[k]);
    double v = model_.value[k];
    const double* col = &binv_[r];  // column r of row-major binv: stride m
    for (size_t i = 0; i < static_cast<size_t>(m_); ++i) {
      out[i] += v * col[i * static_cast<size_t>(m_)];
    }
  }
}

void SimplexSolver::Impl::Btran(const std::vector<double>& in, std::vector<double>& out) const {
  out.assign(static_cast<size_t>(m_), 0.0);
  for (size_t i = 0; i < static_cast<size_t>(m_); ++i) {
    double c = in[i];
    if (c == 0.0) {
      continue;
    }
    const double* row = &binv_[i * static_cast<size_t>(m_)];
    for (size_t r = 0; r < static_cast<size_t>(m_); ++r) {
      out[r] += c * row[r];
    }
  }
}

bool SimplexSolver::Impl::Refactorize() {
  ++refactorizations_;
  // Build the dense basis matrix column by column, then invert via
  // Gauss-Jordan with partial pivoting: [B | I] -> [I | Binv].
  size_t m = static_cast<size_t>(m_);
  std::vector<double> work(m * 2 * m, 0.0);  // rows of [B | I]
  auto at = [&](size_t r, size_t c) -> double& { return work[r * 2 * m + c]; };
  std::vector<double> col(m);
  for (size_t bp = 0; bp < m; ++bp) {
    int32_t var = basic_var_[bp];
    std::fill(col.begin(), col.end(), 0.0);
    AddColumn(col, var, 1.0);
    for (size_t r = 0; r < m; ++r) {
      at(r, bp) = col[r];
    }
  }
  for (size_t r = 0; r < m; ++r) {
    at(r, m + r) = 1.0;
  }
  for (size_t c = 0; c < m; ++c) {
    // Partial pivot.
    size_t pivot_row = c;
    double best = std::fabs(at(c, c));
    for (size_t r = c + 1; r < m; ++r) {
      if (std::fabs(at(r, c)) > best) {
        best = std::fabs(at(r, c));
        pivot_row = r;
      }
    }
    if (best < options_.pivot_tolerance) {
      return false;  // singular basis
    }
    if (pivot_row != c) {
      for (size_t k = 0; k < 2 * m; ++k) {
        std::swap(at(c, k), at(pivot_row, k));
      }
    }
    double pivot = at(c, c);
    for (size_t k = 0; k < 2 * m; ++k) {
      at(c, k) /= pivot;
    }
    for (size_t r = 0; r < m; ++r) {
      if (r == c) {
        continue;
      }
      double factor = at(r, c);
      if (factor == 0.0) {
        continue;
      }
      for (size_t k = 0; k < 2 * m; ++k) {
        at(r, k) -= factor * at(c, k);
      }
    }
  }
  for (size_t r = 0; r < m; ++r) {
    for (size_t c = 0; c < m; ++c) {
      binv_[r * m + c] = at(r, m + c);
    }
  }
  RecomputeBasicValues();
  return true;
}

void SimplexSolver::Impl::RecomputeBasicValues() {
  // rhs = -(sum over nonbasic columns of value_j * column_j); z_B = Binv*rhs.
  size_t m = static_cast<size_t>(m_);
  std::vector<double> rhs(m, 0.0);
  for (int32_t j = 0; j < total_; ++j) {
    if (status_[static_cast<size_t>(j)] == VarStatus::kBasic) {
      continue;
    }
    double v = value_[static_cast<size_t>(j)];
    if (v != 0.0) {
      AddColumn(rhs, j, -v);
    }
  }
  for (size_t i = 0; i < m; ++i) {
    double sum = 0.0;
    const double* row = &binv_[i * m];
    for (size_t r = 0; r < m; ++r) {
      sum += row[r] * rhs[r];
    }
    value_[static_cast<size_t>(basic_var_[i])] = sum;
  }
}

double SimplexSolver::Impl::Residual() const {
  // All columns (including logicals at their values) must sum to zero.
  size_t m = static_cast<size_t>(m_);
  std::vector<double> acc(m, 0.0);
  for (int32_t j = 0; j < total_; ++j) {
    double v = value_[static_cast<size_t>(j)];
    if (v != 0.0) {
      const_cast<Impl*>(this)->AddColumn(acc, j, v);
    }
  }
  double worst = 0.0;
  for (double a : acc) {
    worst = std::max(worst, std::fabs(a));
  }
  return worst;
}

double SimplexSolver::Impl::TotalInfeasibility() const {
  double total = 0.0;
  for (int32_t i = 0; i < m_; ++i) {
    total += InfeasibilityOf(basic_var_[static_cast<size_t>(i)]);
  }
  return total;
}

SimplexSolver::Impl::StepResult SimplexSolver::Impl::Iterate(bool phase1, bool bland) {
  size_t m = static_cast<size_t>(m_);
  const double tol = options_.tolerance;

  // Phase-dependent basic costs.
  cost_b_.assign(m, 0.0);
  if (phase1) {
    for (size_t i = 0; i < m; ++i) {
      int32_t var = basic_var_[i];
      double v = value_[static_cast<size_t>(var)];
      if (v < LowerOf(var) - tol) {
        cost_b_[i] = -1.0;
      } else if (v > UpperOf(var) + tol) {
        cost_b_[i] = 1.0;
      }
    }
  } else {
    for (size_t i = 0; i < m; ++i) {
      cost_b_[i] = CostOf(basic_var_[i]);
    }
  }
  Btran(cost_b_, y_);

  // Pricing: pick the entering variable.
  int32_t entering = -1;
  double entering_dir = 0.0;
  double best_score = tol;
  for (int32_t j = 0; j < total_; ++j) {
    VarStatus st = status_[static_cast<size_t>(j)];
    if (st == VarStatus::kBasic) {
      continue;
    }
    double cost_j = phase1 ? 0.0 : CostOf(j);
    double d = cost_j - DotColumn(y_, j);
    // Increasing is attractive if d < 0; decreasing if d > 0.
    bool can_increase = (st == VarStatus::kAtLower || st == VarStatus::kFreeZero);
    bool can_decrease = (st == VarStatus::kAtUpper || st == VarStatus::kFreeZero);
    if (can_increase && d < -best_score) {
      entering = j;
      entering_dir = 1.0;
      if (bland) {
        break;
      }
      best_score = -d;
    } else if (can_decrease && d > best_score) {
      entering = j;
      entering_dir = -1.0;
      if (bland) {
        break;
      }
      best_score = d;
    }
  }
  if (entering == -1) {
    return StepResult::kNoDirection;
  }

  // Direction of basic values: z_B changes by -t * dir * (Binv * col).
  Ftran(entering, ftran_);

  // Ratio test.
  double best_t = kInf;
  int32_t blocking_pos = -1;
  double blocking_bound = 0.0;
  double best_pivot = 0.0;
  for (size_t i = 0; i < m; ++i) {
    double coef = entering_dir * ftran_[i];
    if (std::fabs(coef) < options_.pivot_tolerance) {
      continue;
    }
    int32_t var = basic_var_[i];
    double v = value_[static_cast<size_t>(var)];
    double lo = LowerOf(var);
    double hi = UpperOf(var);
    double t;
    double bound;
    if (coef > 0.0) {
      // Basic value decreases. A variable already below its lower bound does
      // not block (its growing violation is what phase 1's objective is
      // already steering); one above its upper bound blocks where it becomes
      // feasible (the upper bound); feasible ones block at their lower bound.
      if (v < lo - tol) {
        continue;
      }
      if (phase1 && v > hi + tol) {
        bound = hi;
      } else {
        bound = lo;
      }
      if (!std::isfinite(bound)) {
        continue;
      }
      t = (v - bound) / coef;
    } else {
      // Basic value increases; symmetric cases.
      if (v > hi + tol) {
        continue;
      }
      if (phase1 && v < lo - tol) {
        bound = lo;
      } else {
        bound = hi;
      }
      if (!std::isfinite(bound)) {
        continue;
      }
      t = (v - bound) / coef;  // coef < 0 and v <= bound => t >= 0
    }
    t = std::max(t, 0.0);
    // Prefer strictly smaller ratios; among near-ties keep the largest pivot
    // for numerical stability (a poor man's Harris test). Bland's rule picks
    // the smallest variable index among ties instead.
    bool take = false;
    if (t < best_t - 1e-12) {
      take = true;
    } else if (t < best_t + 1e-12 && blocking_pos >= 0) {
      if (bland) {
        take = basic_var_[i] < basic_var_[static_cast<size_t>(blocking_pos)];
      } else {
        take = std::fabs(coef) > std::fabs(best_pivot);
      }
    }
    if (take) {
      best_t = t;
      blocking_pos = static_cast<int32_t>(i);
      blocking_bound = bound;
      best_pivot = coef;
    }
  }

  // Bound flip: the entering variable may reach its own opposite bound first.
  double lo_e = LowerOf(entering);
  double hi_e = UpperOf(entering);
  double flip_t = kInf;
  if (std::isfinite(lo_e) && std::isfinite(hi_e)) {
    flip_t = hi_e - lo_e;
  }
  if (std::isfinite(flip_t) && flip_t <= best_t) {
    // Flip without changing the basis.
    double delta = entering_dir * flip_t;
    value_[static_cast<size_t>(entering)] += delta;
    status_[static_cast<size_t>(entering)] =
        entering_dir > 0.0 ? VarStatus::kAtUpper : VarStatus::kAtLower;
    for (size_t i = 0; i < m; ++i) {
      value_[static_cast<size_t>(basic_var_[i])] -= delta * ftran_[i];
    }
    return StepResult::kBoundFlip;
  }
  if (blocking_pos < 0) {
    return phase1 ? StepResult::kNumericalFailure : StepResult::kUnbounded;
  }

  // Pivot: entering moves by t, blocking leaves at its bound.
  double t = best_t;
  double delta = entering_dir * t;
  for (size_t i = 0; i < m; ++i) {
    value_[static_cast<size_t>(basic_var_[i])] -= delta * ftran_[i];
  }
  value_[static_cast<size_t>(entering)] += delta;

  int32_t leaving = basic_var_[static_cast<size_t>(blocking_pos)];
  value_[static_cast<size_t>(leaving)] = blocking_bound;
  status_[static_cast<size_t>(leaving)] =
      (blocking_bound == LowerOf(leaving)) ? VarStatus::kAtLower : VarStatus::kAtUpper;
  basis_pos_[static_cast<size_t>(leaving)] = -1;

  status_[static_cast<size_t>(entering)] = VarStatus::kBasic;
  basic_var_[static_cast<size_t>(blocking_pos)] = entering;
  basis_pos_[static_cast<size_t>(entering)] = blocking_pos;

  // Update Binv: eliminate so that column(entering) becomes e_{blocking_pos}.
  double pivot = ftran_[static_cast<size_t>(blocking_pos)];
  if (std::fabs(pivot) < options_.pivot_tolerance) {
    return StepResult::kNumericalFailure;
  }
  size_t bp = static_cast<size_t>(blocking_pos);
  double* pivot_row = &binv_[bp * m];
  for (size_t k = 0; k < m; ++k) {
    pivot_row[k] /= pivot;
  }
  for (size_t i = 0; i < m; ++i) {
    if (i == bp) {
      continue;
    }
    double factor = ftran_[i];
    if (factor == 0.0) {
      continue;
    }
    double* row = &binv_[i * m];
    for (size_t k = 0; k < m; ++k) {
      row[k] -= factor * pivot_row[k];
    }
  }
  return StepResult::kPivoted;
}

Solution SimplexSolver::Impl::Run() {
  Solution solution;
  if (m_ == 0 || n_ == 0) {
    // Degenerate model: no rows -> every variable sits at its best bound.
    solution.status = SolveStatus::kOptimal;
    solution.primal.assign(static_cast<size_t>(n_), 0.0);
    solution.row_activity.assign(static_cast<size_t>(m_), 0.0);
    double obj = 0.0;
    for (int32_t j = 0; j < n_; ++j) {
      double c = model_.objective[static_cast<size_t>(j)];
      double v;
      if (c > 0.0) {
        v = model_.column_lower[static_cast<size_t>(j)];
      } else if (c < 0.0) {
        v = model_.column_upper[static_cast<size_t>(j)];
      } else {
        v = std::isfinite(model_.column_lower[static_cast<size_t>(j)])
                ? model_.column_lower[static_cast<size_t>(j)]
                : 0.0;
      }
      if (!std::isfinite(v)) {
        solution.status = SolveStatus::kUnbounded;
        v = 0.0;
      }
      solution.primal[static_cast<size_t>(j)] = v;
      obj += c * v;
    }
    solution.objective = obj;
    return solution;
  }

  SetupInitialBasis();

  int64_t max_iter = options_.max_iterations > 0
                         ? options_.max_iterations
                         : 200 * static_cast<int64_t>(m_ + n_) + 20000;

  bool phase1 = TotalInfeasibility() > options_.tolerance;
  int64_t stall = 0;
  double last_objective = kInf;
  bool bland = false;

  while (iterations_ < max_iter) {
    ++iterations_;

    if (options_.residual_check_interval > 0 &&
        iterations_ % options_.residual_check_interval == 0) {
      if (Residual() > 1e-6) {
        if (!Refactorize()) {
          solution.status = SolveStatus::kNumericalFailure;
          break;
        }
      }
    }

    StepResult step = Iterate(phase1, bland);
    if (step == StepResult::kNumericalFailure) {
      // One repair attempt via refactorization.
      if (!Refactorize()) {
        solution.status = SolveStatus::kNumericalFailure;
        break;
      }
      continue;
    }
    if (step == StepResult::kUnbounded) {
      solution.status = SolveStatus::kUnbounded;
      break;
    }
    if (step == StepResult::kNoDirection) {
      if (phase1) {
        if (TotalInfeasibility() > options_.tolerance * 10.0) {
          solution.status = SolveStatus::kInfeasible;
          break;
        }
        phase1 = false;
        bland = false;
        stall = 0;
        last_objective = kInf;
        continue;
      }
      solution.status = SolveStatus::kOptimal;
      break;
    }

    // Phase transition check: once feasible, switch to phase 2.
    if (phase1 && TotalInfeasibility() <= options_.tolerance) {
      phase1 = false;
      bland = false;
      stall = 0;
      last_objective = kInf;
      continue;
    }

    // Stall detection for Bland's anti-cycling rule.
    double obj = phase1 ? TotalInfeasibility() : 0.0;
    if (!phase1) {
      for (int32_t j = 0; j < n_; ++j) {
        obj += model_.objective[static_cast<size_t>(j)] * value_[static_cast<size_t>(j)];
      }
    }
    if (obj < last_objective - 1e-12) {
      last_objective = obj;
      stall = 0;
      bland = false;
    } else if (++stall > options_.stall_threshold) {
      bland = true;
    }
  }

  if (iterations_ >= max_iter && solution.status == SolveStatus::kNumericalFailure) {
    solution.status = SolveStatus::kIterationLimit;
  }

  // Extract the solution regardless of status (iteration-limit callers may
  // still want the incumbent point).
  solution.primal.assign(static_cast<size_t>(n_), 0.0);
  for (int32_t j = 0; j < n_; ++j) {
    solution.primal[static_cast<size_t>(j)] = value_[static_cast<size_t>(j)];
  }
  solution.row_activity.assign(static_cast<size_t>(m_), 0.0);
  for (int32_t j = 0; j < n_; ++j) {
    double v = solution.primal[static_cast<size_t>(j)];
    if (v == 0.0) {
      continue;
    }
    auto begin = static_cast<size_t>(model_.column_start[static_cast<size_t>(j)]);
    auto end = static_cast<size_t>(model_.column_start[static_cast<size_t>(j) + 1]);
    for (size_t k = begin; k < end; ++k) {
      solution.row_activity[static_cast<size_t>(model_.row_index[k])] += v * model_.value[k];
    }
  }
  double obj = 0.0;
  for (int32_t j = 0; j < n_; ++j) {
    obj += model_.objective[static_cast<size_t>(j)] * solution.primal[static_cast<size_t>(j)];
  }
  solution.objective = obj;
  solution.stats.iterations = iterations_;
  solution.stats.refactorizations = refactorizations_;
  return solution;
}

SimplexSolver::SimplexSolver(SimplexOptions options) : options_(options) {}

Solution SimplexSolver::Solve(const CompiledModel& model) {
  Impl impl(model, options_);
  Solution solution = impl.Run();
  if (options_.metrics != nullptr) {
    options_.metrics->GetCounter("lp.simplex.solves_total").Increment();
    options_.metrics->GetCounter("lp.simplex.iterations_total")
        .Increment(static_cast<uint64_t>(solution.stats.iterations));
    options_.metrics->GetCounter("lp.simplex.refactorizations_total")
        .Increment(static_cast<uint64_t>(solution.stats.refactorizations));
  }
  return solution;
}

Solution SolveModel(const Model& model, const SimplexOptions& options) {
  SimplexSolver solver(options);
  CompiledModel compiled = model.Compile();
  return solver.Solve(compiled);
}

}  // namespace vcdn::lp
