// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/lp/branch_and_bound.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/util/check.h"

namespace vcdn::lp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Node {
  // Tightened bounds for the integer columns only (parallel arrays with the
  // integer column list).
  std::vector<double> lower;
  std::vector<double> upper;
};

// Index of the most fractional integer column, or -1 if all integral.
int32_t MostFractional(const Solution& lp, const std::vector<int32_t>& integer_columns,
                       double tolerance) {
  int32_t best = -1;
  double best_distance = tolerance;
  for (size_t k = 0; k < integer_columns.size(); ++k) {
    double v = lp.primal[static_cast<size_t>(integer_columns[k])];
    double distance = std::fabs(v - std::round(v));
    if (distance > best_distance) {
      best_distance = distance;
      best = static_cast<int32_t>(k);
    }
  }
  return best;
}

}  // namespace

MipSolution SolveMip(const Model& model, const std::vector<int32_t>& integer_columns,
                     const BranchAndBoundOptions& options) {
  CompiledModel compiled = model.Compile();
  for (int32_t col : integer_columns) {
    VCDN_CHECK(col >= 0 && col < compiled.num_columns);
    VCDN_CHECK(std::isfinite(compiled.column_lower[static_cast<size_t>(col)]));
    VCDN_CHECK(std::isfinite(compiled.column_upper[static_cast<size_t>(col)]));
  }
  SimplexSolver solver(options.simplex);

  // Node/incumbent instruments; no-ops when no registry is configured.
  obs::Counter nodes_counter;
  obs::Counter incumbents_counter;
  obs::Gauge incumbent_gauge;
  if (options.simplex.metrics != nullptr) {
    nodes_counter = options.simplex.metrics->GetCounter("lp.bb.nodes_total");
    incumbents_counter = options.simplex.metrics->GetCounter("lp.bb.incumbents_total");
    incumbent_gauge = options.simplex.metrics->GetGauge("lp.bb.incumbent_objective");
  }

  MipSolution best;
  best.status = SolveStatus::kInfeasible;  // until an incumbent is found
  double incumbent = kInf;

  // Depth-first stack of nodes.
  std::vector<Node> stack;
  {
    Node root;
    root.lower.reserve(integer_columns.size());
    root.upper.reserve(integer_columns.size());
    for (int32_t col : integer_columns) {
      root.lower.push_back(compiled.column_lower[static_cast<size_t>(col)]);
      root.upper.push_back(compiled.column_upper[static_cast<size_t>(col)]);
    }
    stack.push_back(std::move(root));
  }

  bool budget_exhausted = false;
  bool first_node = true;
  while (!stack.empty()) {
    if (best.nodes_explored >= options.max_nodes) {
      budget_exhausted = true;
      break;
    }
    Node node = std::move(stack.back());
    stack.pop_back();
    ++best.nodes_explored;
    nodes_counter.Increment();

    // Apply the node's integer bounds.
    for (size_t k = 0; k < integer_columns.size(); ++k) {
      compiled.column_lower[static_cast<size_t>(integer_columns[k])] = node.lower[k];
      compiled.column_upper[static_cast<size_t>(integer_columns[k])] = node.upper[k];
    }
    Solution lp = solver.Solve(compiled);
    best.simplex_stats.Accumulate(lp.stats);
    if (first_node) {
      best.root_relaxation = lp.status == SolveStatus::kOptimal ? lp.objective : -kInf;
      first_node = false;
    }
    if (lp.status == SolveStatus::kInfeasible) {
      continue;
    }
    if (lp.status != SolveStatus::kOptimal) {
      // Unbounded or numerical trouble at a node: give up cleanly.
      best.status = lp.status;
      return best;
    }
    if (lp.objective >= incumbent - 1e-9) {
      continue;  // pruned by bound
    }
    int32_t branch = MostFractional(lp, integer_columns, options.integrality_tolerance);
    if (branch < 0) {
      // Integral: new incumbent.
      incumbent = lp.objective;
      best.objective = lp.objective;
      best.primal = lp.primal;
      // Snap near-integral values exactly.
      for (int32_t col : integer_columns) {
        best.primal[static_cast<size_t>(col)] = std::round(best.primal[static_cast<size_t>(col)]);
      }
      best.status = SolveStatus::kOptimal;
      incumbents_counter.Increment();
      incumbent_gauge.Set(best.objective);
      continue;
    }
    double value = lp.primal[static_cast<size_t>(integer_columns[static_cast<size_t>(branch)])];
    double floor_value = std::floor(value);
    // Down branch (x <= floor) explored after the up branch (x >= ceil):
    // push down first so up pops first -- for caching IPs, serving more
    // tends to find good incumbents early.
    Node down = node;
    down.upper[static_cast<size_t>(branch)] = floor_value;
    Node up = std::move(node);
    up.lower[static_cast<size_t>(branch)] = floor_value + 1.0;
    stack.push_back(std::move(down));
    stack.push_back(std::move(up));
  }

  if (budget_exhausted && best.status != SolveStatus::kOptimal) {
    best.status = SolveStatus::kIterationLimit;
  } else if (budget_exhausted) {
    // Have an incumbent but search was truncated: not proven optimal.
    best.status = SolveStatus::kIterationLimit;
  }
  return best;
}

}  // namespace vcdn::lp
