// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Bounded-variable revised simplex solver.
//
// Solves  min c'x  s.t.  L <= Ax <= U,  l <= x <= u  by introducing one
// logical (slack) variable per row (A x - s = 0, s in [L, U]) and running the
// textbook two-phase bounded revised simplex:
//
//   * the basis inverse is kept as an explicit dense m x m matrix, updated in
//     O(m^2) per pivot and rebuilt from scratch (Gauss-Jordan with partial
//     pivoting) when a periodic residual check detects drift;
//   * phase 1 minimizes the sum of bound violations of basic variables with
//     the standard composite objective; phase 2 optimizes c'x;
//   * pricing is Dantzig (steepest reduced cost) with a Bland anti-cycling
//     fallback after a stall, and the ratio test performs bound flips.
//
// Designed for the offline Optimal cache LPs (Sec. 7): thousands of rows,
// extremely sparse 0/+-1 constraint matrices. The all-zero point ("redirect
// everything") is feasible for those models, so phase 1 is typically a no-op.

#ifndef VCDN_SRC_LP_SIMPLEX_H_
#define VCDN_SRC_LP_SIMPLEX_H_

#include <cstdint>
#include <vector>

#include "src/lp/model.h"
#include "src/obs/metrics.h"

namespace vcdn::lp {

enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
  kNumericalFailure,
};

const char* SolveStatusName(SolveStatus status);

struct SimplexOptions {
  // Primal feasibility / dual optimality tolerance.
  double tolerance = 1e-7;
  // Smallest acceptable pivot magnitude.
  double pivot_tolerance = 1e-9;
  // 0 = automatic (scales with model size).
  int64_t max_iterations = 0;
  // Residual check cadence (iterations); a failed check triggers dense
  // refactorization of the basis inverse.
  int64_t residual_check_interval = 512;
  // Iterations without objective progress before switching to Bland's rule.
  int64_t stall_threshold = 2000;
  // Optional instrument registry: each Solve accumulates into
  // "lp.simplex.solves_total" / "lp.simplex.iterations_total" /
  // "lp.simplex.refactorizations_total". Not owned; may be null.
  obs::MetricsRegistry* metrics = nullptr;
};

// Solver effort counters, reported with every Solution so callers (examples,
// benches, the Optimal bound) can surface them instead of discarding them.
struct SimplexStats {
  int64_t iterations = 0;
  int64_t refactorizations = 0;

  void Accumulate(const SimplexStats& other) {
    iterations += other.iterations;
    refactorizations += other.refactorizations;
  }
};

struct Solution {
  SolveStatus status = SolveStatus::kNumericalFailure;
  double objective = 0.0;
  std::vector<double> primal;        // structural variable values
  std::vector<double> row_activity;  // Ax
  SimplexStats stats;
};

class SimplexSolver {
 public:
  explicit SimplexSolver(SimplexOptions options = {});

  Solution Solve(const CompiledModel& model);

 private:
  class Impl;
  SimplexOptions options_;
};

// Convenience: compile + solve.
Solution SolveModel(const Model& model, const SimplexOptions& options = {});

}  // namespace vcdn::lp

#endif  // VCDN_SRC_LP_SIMPLEX_H_
