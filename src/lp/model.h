// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// LP model builder: minimize c'x subject to row bounds L <= Ax <= U and
// variable bounds l <= x <= u. Built for the offline Optimal cache (Sec. 7)
// but fully general. Constraints are stored sparsely (triplets compiled into
// column-major form by Compile()).

#ifndef VCDN_SRC_LP_MODEL_H_
#define VCDN_SRC_LP_MODEL_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "src/util/check.h"

namespace vcdn::lp {

inline constexpr double kLpInfinity = std::numeric_limits<double>::infinity();

struct SparseEntry {
  int32_t row = 0;
  int32_t column = 0;
  double value = 0.0;
};

// Column-major compiled form used by the solver.
struct CompiledModel {
  int32_t num_rows = 0;
  int32_t num_columns = 0;
  std::vector<double> objective;      // per column
  std::vector<double> column_lower;   // per column
  std::vector<double> column_upper;   // per column
  std::vector<double> row_lower;      // per row
  std::vector<double> row_upper;      // per row
  // CSC storage of A.
  std::vector<int64_t> column_start;  // size num_columns + 1
  std::vector<int32_t> row_index;     // size nnz
  std::vector<double> value;          // size nnz
};

class Model {
 public:
  // Adds a variable with bounds [lower, upper] and objective coefficient.
  // Returns its column index.
  int32_t AddVariable(double lower, double upper, double objective);

  // Adds a row (constraint) with bounds [lower, upper]. Returns its index.
  // Use lower == upper for equalities; +/-kLpInfinity for one-sided rows.
  int32_t AddRow(double lower, double upper);

  // Adds A[row, column] += value.
  void AddCoefficient(int32_t row, int32_t column, double value);

  int32_t num_rows() const { return static_cast<int32_t>(row_lower_.size()); }
  int32_t num_columns() const { return static_cast<int32_t>(objective_.size()); }
  size_t num_entries() const { return entries_.size(); }

  // Compiles to column-major form; duplicate (row, column) entries are summed.
  CompiledModel Compile() const;

 private:
  std::vector<double> objective_;
  std::vector<double> column_lower_;
  std::vector<double> column_upper_;
  std::vector<double> row_lower_;
  std::vector<double> row_upper_;
  std::vector<SparseEntry> entries_;
};

}  // namespace vcdn::lp

#endif  // VCDN_SRC_LP_MODEL_H_
