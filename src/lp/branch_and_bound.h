// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Branch-and-bound mixed 0/1 integer programming on top of the simplex
// solver. The paper formulates offline caching as an Integer Program
// (Sec. 7) but only solves its LP relaxation; Sec. 10 lists "an exact
// optimal solution ... whether the proposed IP formulation or a customized
// algorithm" as future work. This solver provides that exact optimum for
// limited scales.
//
// Scope: minimization; any subset of variables declared integral (their
// bounds are expected to be within [0, 1] for the caching IPs, though the
// code only assumes finite bounds). Depth-first search branching on the most
// fractional integral variable, pruning by the incumbent, with node and
// iteration budgets.

#ifndef VCDN_SRC_LP_BRANCH_AND_BOUND_H_
#define VCDN_SRC_LP_BRANCH_AND_BOUND_H_

#include <cstdint>
#include <vector>

#include "src/lp/model.h"
#include "src/lp/simplex.h"

namespace vcdn::lp {

struct BranchAndBoundOptions {
  SimplexOptions simplex;
  // Integrality tolerance: |x - round(x)| <= tolerance counts as integral.
  double integrality_tolerance = 1e-6;
  // Search budget; exceeding it returns the incumbent with kIterationLimit.
  int64_t max_nodes = 100000;
};

struct MipSolution {
  SolveStatus status = SolveStatus::kNumericalFailure;
  double objective = 0.0;
  std::vector<double> primal;
  int64_t nodes_explored = 0;
  // Best LP bound at the root (for gap reporting).
  double root_relaxation = 0.0;
  // Total simplex effort across all node relaxations.
  SimplexStats simplex_stats;
};

// Minimizes the model with the given columns required to take integral
// values. Returns kOptimal with the exact optimum, kInfeasible if no
// integral point exists, or kIterationLimit with the best incumbent found
// within the node budget (primal empty if none).
MipSolution SolveMip(const Model& model, const std::vector<int32_t>& integer_columns,
                     const BranchAndBoundOptions& options = {});

}  // namespace vcdn::lp

#endif  // VCDN_SRC_LP_BRANCH_AND_BOUND_H_
