// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/core/psychic_cache.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace vcdn::core {

namespace {
constexpr double kInfinity = std::numeric_limits<double>::infinity();
// Floor on (t - now) when weighting future requests; a same-instant future
// request is "infinitely urgent" only up to this resolution.
constexpr double kMinLookahead = 1e-3;
}  // namespace

PsychicCache::PsychicCache(const CacheConfig& config, const PsychicOptions& options)
    : CacheAlgorithm(config), options_(options) {
  VCDN_CHECK(options_.future_horizon > 0);
  VCDN_CHECK(options_.age_smoothing > 0.0 && options_.age_smoothing <= 1.0);
  const auto capacity = static_cast<size_t>(config.disk_capacity_chunks);
  cached_.Reserve(capacity);
  fill_time_.Reserve(capacity);
}

void PsychicCache::Prepare(const trace::Trace& trace) {
  futures_.clear();
  futures_.reserve(trace.requests.size());
  for (const trace::Request& r : trace.requests) {
    ChunkRange range = ToChunkRange(r, config_.chunk_bytes);
    for (uint32_t c = range.first; c <= range.last; ++c) {
      futures_[ChunkId{r.video, c}].times.push_back(r.arrival_time);
    }
  }
  prepared_ = true;
}

const PsychicCache::FutureList* PsychicCache::FindFuture(const ChunkId& chunk) const {
  auto it = futures_.find(chunk);
  return it == futures_.end() ? nullptr : &it->second;
}

double PsychicCache::NextRequestTime(const FutureList& future) const {
  if (future.next >= future.times.size()) {
    return kInfinity;
  }
  return future.times[future.next];
}

double PsychicCache::FutureCost(const FutureList& future, double now, double window) const {
  double cost = 0.0;
  size_t limit = std::min(future.times.size(), future.next + options_.future_horizon);
  for (size_t i = future.next; i < limit; ++i) {
    cost += window / std::max(future.times[i] - now, kMinLookahead);
  }
  return cost;
}

double PsychicCache::CacheAge(double now) const {
  if (residence_initialized_) {
    return average_residence_;
  }
  // No eviction yet: the cache is still filling; its churn horizon is its
  // lifetime so far.
  return first_request_time_ < 0.0 ? 0.0 : now - first_request_time_;
}

uint64_t PsychicCache::EvictDownTo(uint64_t max_chunks) {
  uint64_t evicted = 0;
  while (cached_.size() > max_chunks) {
    auto [key, chunk] = cached_.PopTop();  // farthest-future first
    (void)key;
    fill_time_.Erase(chunk);
    ++evicted;
  }
  return evicted;
}

void PsychicCache::OnAttachMetrics(obs::MetricsRegistry& registry, const std::string& prefix) {
  window_gauge_ = registry.GetGauge(prefix + "window_seconds");
  tracked_futures_gauge_ = registry.GetGauge(prefix + "tracked_future_chunks");
}

void PsychicCache::OnOutcomeRecorded() {
  window_gauge_.Set(average_residence_);
  tracked_futures_gauge_.Set(static_cast<double>(futures_.size()));
}

RequestOutcome PsychicCache::HandleRequestImpl(const trace::Request& request) {
  VCDN_CHECK_MSG(prepared_, "PsychicCache::Prepare() must run before replay");
  const double now = request.arrival_time;
  if (first_request_time_ < 0.0) {
    first_request_time_ = now;
  }
  RequestOutcome outcome = MakeOutcome(request);
  ChunkRange range = ToChunkRange(request, config_.chunk_bytes);

  // Consume this request from every covered chunk's future list, so costs
  // below only see strictly-future requests.
  std::vector<ChunkId>& all_chunks = all_chunks_scratch_;
  std::vector<ChunkId>& missing = missing_scratch_;
  all_chunks.clear();
  missing.clear();
  all_chunks.reserve(range.count());
  for (uint32_t c = range.first; c <= range.last; ++c) {
    ChunkId chunk{request.video, c};
    all_chunks.push_back(chunk);
    auto it = futures_.find(chunk);
    VCDN_CHECK_MSG(it != futures_.end(), "request not present in prepared trace");
    FutureList& future = it->second;
    while (future.next < future.times.size() && future.times[future.next] <= now) {
      ++future.next;
    }
    if (!cached_.Contains(chunk)) {
      missing.push_back(chunk);
    }
  }
  outcome.hit_chunks = static_cast<uint32_t>(all_chunks.size() - missing.size());

  bool admit = false;
  std::vector<ChunkId>& victims = victims_scratch_;
  victims.clear();
  if (range.count() <= config_.disk_capacity_chunks) {
    // S'': cached chunks requested farthest in the future, skipping S.
    uint64_t needed = cached_.size() + missing.size();
    uint64_t evictions =
        needed > config_.disk_capacity_chunks ? needed - config_.disk_capacity_chunks : 0;
    if (evictions > 0) {
      cached_.ScanInOrder([&](const auto& item) {
        const ChunkId& chunk = item.second;
        if (chunk.video == request.video && chunk.index >= range.first &&
            chunk.index <= range.last) {
          return true;
        }
        victims.push_back(chunk);
        return victims.size() < evictions;
      });
      VCDN_CHECK(victims.size() == evictions);
    }

    double window = CacheAge(now);
    double min_cost = cost_.min_cost();

    // Eq. (13).
    double cost_serve = static_cast<double>(missing.size()) * cost_.fill_cost();
    for (const ChunkId& chunk : victims) {
      if (const FutureList* future = FindFuture(chunk)) {
        cost_serve += FutureCost(*future, now, window) * min_cost;
      }
    }
    // Eq. (14).
    double cost_redirect = static_cast<double>(all_chunks.size()) * cost_.redirect_cost();
    for (const ChunkId& chunk : missing) {
      const FutureList* future = FindFuture(chunk);
      VCDN_DCHECK(future != nullptr);
      cost_redirect += FutureCost(*future, now, window) * min_cost;
    }
    admit = cost_serve <= cost_redirect;
  }

  if (admit) {
    for (const ChunkId& chunk : victims) {
      cached_.Erase(chunk);
      const double* filled_at = fill_time_.Peek(chunk);
      VCDN_DCHECK(filled_at != nullptr);
      double residence = now - *filled_at;
      fill_time_.Erase(chunk);
      if (!residence_initialized_) {
        average_residence_ = residence;
        residence_initialized_ = true;
      } else {
        average_residence_ = options_.age_smoothing * residence +
                             (1.0 - options_.age_smoothing) * average_residence_;
      }
      ++outcome.evicted_chunks;
    }
    for (const ChunkId& chunk : all_chunks) {
      const FutureList* future = FindFuture(chunk);
      double next_time = future != nullptr ? NextRequestTime(*future) : kInfinity;
      // Re-keys if present (next request changed), fills otherwise.
      if (cached_.InsertOrUpdate(chunk, next_time)) {
        fill_time_.InsertOrTouch(chunk, now);
        ++outcome.filled_chunks;
      }
    }
    outcome.decision = Decision::kServe;
  } else {
    // Redirected; cached chunks in S still need their next-request key
    // refreshed (this arrival was consumed from their future list).
    for (const ChunkId& chunk : all_chunks) {
      if (cached_.Contains(chunk)) {
        const FutureList* future = FindFuture(chunk);
        cached_.InsertOrUpdate(chunk, future != nullptr ? NextRequestTime(*future) : kInfinity);
      }
    }
    outcome.decision = Decision::kRedirect;
  }
  return outcome;
}

}  // namespace vcdn::core
