// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// The common interface of all cache algorithms (Problem 1 / Problem 2 in
// Sec. 4.3): for each request, either SERVE (cache-filling any missing
// chunks, evicting as needed) or REDIRECT the whole request. A request is
// always fully served or fully redirected, never split.

#ifndef VCDN_SRC_CORE_CACHE_ALGORITHM_H_
#define VCDN_SRC_CORE_CACHE_ALGORITHM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/chunk.h"
#include "src/core/cost_model.h"
#include "src/obs/metrics.h"
#include "src/trace/request.h"

namespace vcdn::core {

enum class Decision {
  kServe,     // serve from cache, filling any missing chunks first
  kRedirect,  // HTTP 302 to an alternative server
  // The server never saw the request (outage): the replay's fault layer
  // synthesizes these; cache algorithms themselves never return it.
  kUnavailable,
};

struct CacheConfig {
  uint64_t chunk_bytes = kDefaultChunkBytes;
  uint64_t disk_capacity_chunks = 0;  // must be > 0
  double alpha_f2r = 1.0;             // ingress-to-redirect preference (Sec. 4.1)
};

// Accounting for one handled request, in the units the cost model needs:
// fills are chunk-granular (a chunk is ingressed in full), redirects and the
// denominator of Eq. (2) are byte-granular.
struct RequestOutcome {
  Decision decision = Decision::kRedirect;
  uint64_t requested_bytes = 0;
  uint32_t requested_chunks = 0;
  uint32_t filled_chunks = 0;   // 0 when redirected
  uint32_t evicted_chunks = 0;  // evictions triggered by this fill
  uint32_t hit_chunks = 0;      // requested chunks already on disk
  // Background fills piggy-backed on this request by a proactive cache
  // (Sec. 10 "proactive caching for spare ingress"); charged as ingress.
  uint32_t proactive_filled_chunks = 0;
};

// Reusable carrier for batched admission (sim::Replay accumulates into one):
// a view of consecutive, time-ordered requests plus outcome storage that is
// kept alive across batches, so steady-state batching does not allocate. The
// requests stay owned by the trace.
struct RequestBatch {
  const trace::Request* requests = nullptr;
  size_t count = 0;
  std::vector<RequestOutcome> outcomes;
};

class CacheAlgorithm {
 public:
  explicit CacheAlgorithm(const CacheConfig& config) : config_(config), cost_(config.alpha_f2r) {
    VCDN_CHECK(config.disk_capacity_chunks > 0);
    VCDN_CHECK(config.chunk_bytes > 0);
  }
  virtual ~CacheAlgorithm() = default;

  CacheAlgorithm(const CacheAlgorithm&) = delete;
  CacheAlgorithm& operator=(const CacheAlgorithm&) = delete;

  // Offline algorithms (Psychic, Optimal) receive the full request sequence
  // before replay (Problem 2); online algorithms ignore this.
  virtual void Prepare(const trace::Trace& trace) { (void)trace; }

  // True for offline algorithms whose Prepare() indexes the whole trace;
  // such caches cannot be driven by sim::ReplayStream (there is no full
  // trace to hand them). Online algorithms -- everything the paper deploys
  // -- stream fine with the default.
  virtual bool requires_full_trace() const { return false; }

  // Handles one request; requests must arrive in non-decreasing time order.
  // Non-virtual choke point: dispatches to HandleRequestImpl and, when a
  // metrics registry is attached, records the outcome into the cache's
  // instruments.
  RequestOutcome HandleRequest(const trace::Request& request) {
    RequestOutcome outcome = HandleRequestImpl(request);
    if (metrics_attached_) {
      RecordOutcome(outcome);
    }
    return outcome;
  }

  // Handles `count` consecutive, time-ordered requests through one virtual
  // dispatch. Observably identical to calling HandleRequest on each request
  // in order -- batching is a scheduling change, never a semantics change --
  // but lets an algorithm overlap independent memory accesses across the
  // batch (see CafeCacheT's software-pipelined override). `outcomes` must
  // hold at least `count` entries.
  void HandleRequestBatch(const trace::Request* requests, size_t count,
                          RequestOutcome* outcomes) {
    HandleRequestBatchImpl(requests, count, outcomes);
    if (metrics_attached_) {
      // Deferring the per-request recording to the end of the batch is
      // observable only through a registry snapshot, and callers cut batches
      // at every snapshot point (bucket flushes), so counter and gauge
      // values agree with the unbatched path wherever they can be read.
      for (size_t i = 0; i < count; ++i) {
        RecordOutcome(outcomes[i]);
      }
    }
  }

  // Convenience for RequestBatch-accumulating callers; grows the outcome
  // storage once and reuses it afterwards.
  void HandleRequestBatch(RequestBatch& batch) {
    if (batch.outcomes.size() < batch.count) {
      batch.outcomes.resize(batch.count);
    }
    HandleRequestBatch(batch.requests, batch.count, batch.outcomes.data());
  }

  // Registers this cache's instruments under "cache.<name>." and starts
  // recording every outcome (hits/fills/evictions/redirects, occupancy
  // gauge, request-size histogram, plus subclass-specific instruments).
  // Idempotent per registry; attaching a second registry re-points the
  // handles. Counters of same-named caches in one registry aggregate.
  void AttachMetrics(obs::MetricsRegistry& registry) {
    const std::string prefix = "cache." + std::string(name()) + ".";
    requests_total_ = registry.GetCounter(prefix + "requests_total");
    served_total_ = registry.GetCounter(prefix + "served_total");
    redirected_total_ = registry.GetCounter(prefix + "redirected_total");
    hit_chunks_total_ = registry.GetCounter(prefix + "hit_chunks_total");
    filled_chunks_total_ = registry.GetCounter(prefix + "filled_chunks_total");
    proactive_filled_chunks_total_ =
        registry.GetCounter(prefix + "proactive_filled_chunks_total");
    evicted_chunks_total_ = registry.GetCounter(prefix + "evicted_chunks_total");
    used_chunks_gauge_ = registry.GetGauge(prefix + "used_chunks");
    request_chunks_hist_ = registry.GetHistogram(prefix + "request_chunks", 0.0, 64.0, 16);
    // Log-bucketed: request sizes span KBs to GBs, where the uniform
    // histogram above has no resolution (1 KiB .. 1 GiB, 8 sub-buckets per
    // octave = 12.5% relative error at every scale).
    request_bytes_hdr_ = registry.GetHdrHistogram(prefix + "request_bytes", 1024.0,
                                                  1024.0 * 1024.0 * 1024.0, 8);
    OnAttachMetrics(registry, prefix);
    metrics_attached_ = true;
  }

  bool metrics_attached() const { return metrics_attached_; }

  virtual std::string_view name() const = 0;

  // Re-targets the disk capacity at runtime (fault injection's disk-degrade
  // events, and a building block for elastic provisioning). Shrinking evicts
  // immediately, in the algorithm's own victim order, down to the new limit;
  // growing just raises the limit. Returns the number of chunks evicted.
  uint64_t Resize(uint64_t new_capacity_chunks) {
    VCDN_CHECK(new_capacity_chunks > 0);
    config_.disk_capacity_chunks = new_capacity_chunks;
    uint64_t evicted = EvictDownTo(new_capacity_chunks);
    if (metrics_attached_) {
      used_chunks_gauge_.Set(static_cast<double>(used_chunks()));
    }
    return evicted;
  }

  // Cold restart: drops every chunk on disk; capacity is unchanged and
  // popularity-tracking state survives (a restart loses the disk contents,
  // not the tracking database). Returns the number of chunks dropped.
  uint64_t DropContents() {
    uint64_t dropped = EvictDownTo(0);
    if (metrics_attached_) {
      used_chunks_gauge_.Set(static_cast<double>(used_chunks()));
    }
    return dropped;
  }

  // Re-targets the fill-to-redirect preference at runtime (Sec. 10 discusses
  // dynamic adjustment of alpha_F2R "in a small range through a control
  // loop"). Takes effect from the next request.
  virtual void SetAlphaF2r(double alpha_f2r) {
    VCDN_CHECK(alpha_f2r > 0.0);
    config_.alpha_f2r = alpha_f2r;
    cost_ = CostModel(alpha_f2r);
  }

  // Number of chunks currently stored.
  virtual uint64_t used_chunks() const = 0;

  // True if the given chunk is currently on disk (for tests/inspection).
  virtual bool ContainsChunk(const ChunkId& chunk) const = 0;

  const CacheConfig& config() const { return config_; }
  const CostModel& cost_model() const { return cost_; }

 protected:
  // The algorithm's actual request handling (old virtual HandleRequest).
  virtual RequestOutcome HandleRequestImpl(const trace::Request& request) = 0;

  // Batched counterpart of HandleRequestImpl. The default loops, so every
  // algorithm works unchanged at any batch size; algorithms whose hot path
  // is memory-latency-bound override this to pre-hash keys and software-
  // prefetch request i+k's probe targets while evaluating request i. An
  // override must produce bit-identical outcomes and end-state to this loop.
  virtual void HandleRequestBatchImpl(const trace::Request* requests, size_t count,
                                      RequestOutcome* outcomes) {
    for (size_t i = 0; i < count; ++i) {
      outcomes[i] = HandleRequestImpl(requests[i]);
    }
  }

  // Evicts, in the algorithm's victim order, until used_chunks() is at most
  // `max_chunks` (0 empties the disk). Returns the number evicted. Backs
  // Resize/DropContents; must not touch config_.disk_capacity_chunks.
  virtual uint64_t EvictDownTo(uint64_t max_chunks) = 0;

  // Subclass hook: register algorithm-specific instruments under `prefix`
  // (e.g. xLRU's tracker occupancy, Cafe's admission-decision mix).
  virtual void OnAttachMetrics(obs::MetricsRegistry& registry, const std::string& prefix) {
    (void)registry;
    (void)prefix;
  }

  // Subclass hook: refresh algorithm-specific gauges; called after each
  // recorded request while metrics are attached.
  virtual void OnOutcomeRecorded() {}

  // Shared helper: outcome skeleton for a request.
  RequestOutcome MakeOutcome(const trace::Request& request) const {
    RequestOutcome outcome;
    outcome.requested_bytes = request.size_bytes();
    outcome.requested_chunks = ToChunkRange(request, config_.chunk_bytes).count();
    return outcome;
  }

  CacheConfig config_;
  CostModel cost_;

 private:
  void RecordOutcome(const RequestOutcome& outcome) {
    requests_total_.Increment();
    if (outcome.decision == Decision::kServe) {
      served_total_.Increment();
    } else {
      redirected_total_.Increment();
    }
    hit_chunks_total_.Increment(outcome.hit_chunks);
    // Matches ReplayTotals::filled_chunks: proactive prefetches are ingress.
    filled_chunks_total_.Increment(outcome.filled_chunks + outcome.proactive_filled_chunks);
    proactive_filled_chunks_total_.Increment(outcome.proactive_filled_chunks);
    evicted_chunks_total_.Increment(outcome.evicted_chunks);
    used_chunks_gauge_.Set(static_cast<double>(used_chunks()));
    request_chunks_hist_.Observe(static_cast<double>(outcome.requested_chunks));
    request_bytes_hdr_.Observe(static_cast<double>(outcome.requested_bytes));
    OnOutcomeRecorded();
  }

  bool metrics_attached_ = false;
  obs::Counter requests_total_;
  obs::Counter served_total_;
  obs::Counter redirected_total_;
  obs::Counter hit_chunks_total_;
  obs::Counter filled_chunks_total_;
  obs::Counter proactive_filled_chunks_total_;
  obs::Counter evicted_chunks_total_;
  obs::Gauge used_chunks_gauge_;
  obs::Histogram request_chunks_hist_;
  obs::HdrHistogram request_bytes_hdr_;
};

}  // namespace vcdn::core

#endif  // VCDN_SRC_CORE_CACHE_ALGORITHM_H_
