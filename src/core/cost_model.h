// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// The ingress-vs-redirect cost model of Sec. 4.1-4.2.
//
// Each cache-filled byte costs C_F and each redirected byte costs C_R; only
// their ratio alpha_F2R = C_F / C_R matters, so they are normalized to
// C_F + C_R = 2 (Eq. 3), giving C_F = 2a/(a+1) and C_R = 2/(a+1) (Eq. 4).
// Cache efficiency (Eq. 2) is
//     1 - (filled_bytes / requested_bytes) * C_F
//       - (redirected_bytes / requested_bytes) * C_R        in [-1, 1],
// where fills are counted at chunk granularity (a chunk is fetched in full
// even if requested partially) and redirects at byte granularity.

#ifndef VCDN_SRC_CORE_COST_MODEL_H_
#define VCDN_SRC_CORE_COST_MODEL_H_

#include <cstdint>

#include "src/util/check.h"

namespace vcdn::core {

class CostModel {
 public:
  // alpha_f2r > 0. Common operating points (Sec. 4.1): 1 for indifferent
  // servers, 2 (default for constrained servers), 0.5-0.75 for cheap ingress.
  explicit CostModel(double alpha_f2r) : alpha_(alpha_f2r) {
    VCDN_CHECK(alpha_f2r > 0.0);
  }

  double alpha_f2r() const { return alpha_; }

  // Eq. (4).
  double fill_cost() const { return 2.0 * alpha_ / (alpha_ + 1.0); }
  double redirect_cost() const { return 2.0 / (alpha_ + 1.0); }
  double min_cost() const { return fill_cost() < redirect_cost() ? fill_cost() : redirect_cost(); }

  // Eq. (1): total cost of a serving pattern.
  double TotalCost(uint64_t ingress_bytes, uint64_t redirected_bytes) const {
    return static_cast<double>(ingress_bytes) * fill_cost() +
           static_cast<double>(redirected_bytes) * redirect_cost();
  }

  // Eq. (2): cache efficiency. requested_bytes must be > 0.
  double Efficiency(uint64_t filled_bytes, uint64_t redirected_bytes,
                    uint64_t requested_bytes) const {
    VCDN_CHECK(requested_bytes > 0);
    double rq = static_cast<double>(requested_bytes);
    return 1.0 - static_cast<double>(filled_bytes) / rq * fill_cost() -
           static_cast<double>(redirected_bytes) / rq * redirect_cost();
  }

 private:
  double alpha_;
};

}  // namespace vcdn::core

#endif  // VCDN_SRC_CORE_COST_MODEL_H_
