// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/core/cache_factory.h"

#include "src/core/baseline_caches.h"
#include "src/core/cafe_cache.h"
#include "src/core/psychic_cache.h"
#include "src/core/xlru_cache.h"
#include "src/util/check.h"

namespace vcdn::core {

std::string_view CacheKindName(CacheKind kind) {
  switch (kind) {
    case CacheKind::kXlru:
      return "xLRU";
    case CacheKind::kCafe:
      return "Cafe";
    case CacheKind::kPsychic:
      return "Psychic";
    case CacheKind::kFillLru:
      return "FillLRU";
    case CacheKind::kFillLfu:
      return "FillLFU";
    case CacheKind::kBelady:
      return "Belady";
    case CacheKind::kXlruRef:
      return "xLRU-ref";
    case CacheKind::kCafeRef:
      return "Cafe-ref";
  }
  return "unknown";
}

std::unique_ptr<CacheAlgorithm> MakeCache(CacheKind kind, const CacheConfig& config) {
  switch (kind) {
    case CacheKind::kXlru:
      return std::make_unique<XlruCache>(config);
    case CacheKind::kCafe:
      return std::make_unique<CafeCache>(config);
    case CacheKind::kPsychic:
      return std::make_unique<PsychicCache>(config);
    case CacheKind::kFillLru:
      return std::make_unique<AlwaysFillLruCache>(config);
    case CacheKind::kFillLfu:
      return std::make_unique<FillLfuCache>(config);
    case CacheKind::kBelady:
      return std::make_unique<BeladyCache>(config);
    case CacheKind::kXlruRef:
      return std::make_unique<ReferenceXlruCache>(config);
    case CacheKind::kCafeRef:
      return std::make_unique<ReferenceCafeCache>(config);
  }
  VCDN_CHECK_MSG(false, "unknown CacheKind");
  return nullptr;
}

}  // namespace vcdn::core
