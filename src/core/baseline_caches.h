// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Classic caching baselines. The paper argues (Secs. 2-3) that standard
// replacement-only caches cannot manage the ingress-vs-redirect tradeoff;
// these implementations quantify that claim in the ablation benches and
// anchor the test suite:
//
//   * AlwaysFillLruCache -- the standard Web-proxy behaviour: serve every
//     request, cache-fill every miss, evict LRU chunks. Never redirects
//     (except for ranges wider than the disk). Its ingress is the worst case.
//   * BeladyCache -- offline fill-always cache with Belady's MIN replacement
//     (evict the chunk requested farthest in the future). The classic
//     optimal *replacement* policy, which still lacks an admission/redirect
//     decision; contrasted with Psychic/Optimal in tests and benches.
//
// All three run on the flat hot-path containers (FlatLruMap / ScoreHeap);
// the node-based reference containers remain available through the policy
// header for the A/B instantiations of xLRU and Cafe.

#ifndef VCDN_SRC_CORE_BASELINE_CACHES_H_
#define VCDN_SRC_CORE_BASELINE_CACHES_H_

#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/container/flat_lru_map.h"
#include "src/container/score_heap.h"
#include "src/core/cache_algorithm.h"

namespace vcdn::core {

class AlwaysFillLruCache : public CacheAlgorithm {
 public:
  explicit AlwaysFillLruCache(const CacheConfig& config) : CacheAlgorithm(config) {
    disk_.Reserve(static_cast<size_t>(config.disk_capacity_chunks));
  }

  std::string_view name() const override { return "FillLRU"; }
  uint64_t used_chunks() const override { return disk_.size(); }
  bool ContainsChunk(const ChunkId& chunk) const override { return disk_.Contains(chunk); }

 protected:
  RequestOutcome HandleRequestImpl(const trace::Request& request) override;
  uint64_t EvictDownTo(uint64_t max_chunks) override;  // LRU order

 private:
  container::FlatLruMap<ChunkId, double, ChunkIdHash> disk_;
  std::vector<uint32_t> missing_scratch_;  // reused: no steady-state allocation
};

// Classic fill-always cache with Least-Frequently-Used replacement (Sec. 2
// cites LFU among the standard policies). Frequencies are exponentially aged
// so stale once-hot chunks ("cache pollution", a known LFU weakness the
// paper's EWMA IATs avoid) eventually churn out.
class FillLfuCache : public CacheAlgorithm {
 public:
  explicit FillLfuCache(const CacheConfig& config, double aging_halflife_seconds = 6.0 * 3600.0)
      : CacheAlgorithm(config), aging_halflife_(aging_halflife_seconds) {
    VCDN_CHECK(aging_halflife_seconds > 0.0);
    cached_.Reserve(static_cast<size_t>(config.disk_capacity_chunks));
  }

  std::string_view name() const override { return "FillLFU"; }
  uint64_t used_chunks() const override { return cached_.size(); }
  bool ContainsChunk(const ChunkId& chunk) const override { return cached_.Contains(chunk); }

 protected:
  RequestOutcome HandleRequestImpl(const trace::Request& request) override;
  uint64_t EvictDownTo(uint64_t max_chunks) override;  // least frequent first

 private:
  // Time-invariant LFU key: log2(aged count) + t/halflife. Aging multiplies
  // every count by the same factor per unit time, so this log-space key
  // orders chunks identically at all times (same idea as Cafe's Theorem 1
  // virtual timestamps) without unbounded growth.
  double BumpKey(double old_key, double now) const;

  double aging_halflife_;
  // Cached chunks ordered by the log-space frequency key; Top() is the
  // least frequently used chunk.
  container::ScoreHeap<ChunkId, double, ChunkIdHash, /*kMaxFirst=*/false> cached_;
  std::vector<ChunkId> missing_scratch_;
  std::vector<ChunkId> victims_scratch_;
};

class BeladyCache : public CacheAlgorithm {
 public:
  explicit BeladyCache(const CacheConfig& config) : CacheAlgorithm(config) {
    cached_.Reserve(static_cast<size_t>(config.disk_capacity_chunks));
  }

  void Prepare(const trace::Trace& trace) override;
  bool requires_full_trace() const override { return true; }
  std::string_view name() const override { return "Belady"; }
  uint64_t used_chunks() const override { return cached_.size(); }
  bool ContainsChunk(const ChunkId& chunk) const override { return cached_.Contains(chunk); }

 protected:
  RequestOutcome HandleRequestImpl(const trace::Request& request) override;
  uint64_t EvictDownTo(uint64_t max_chunks) override;  // farthest future first

 private:
  struct FutureList {
    std::vector<double> times;
    size_t next = 0;
  };

  bool prepared_ = false;
  std::unordered_map<ChunkId, FutureList, ChunkIdHash> futures_;
  // Scored by next request time; Top() = farthest future = Belady victim.
  container::ScoreHeap<ChunkId, double, ChunkIdHash, /*kMaxFirst=*/true> cached_;
  std::vector<ChunkId> missing_scratch_;
};

}  // namespace vcdn::core

#endif  // VCDN_SRC_CORE_BASELINE_CACHES_H_
