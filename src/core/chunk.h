// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Fixed-size chunk model (Sec. 4): "we can divide the disk and the files into
// small chunks of fixed size K bytes (e.g., 2 MB). ... we deal with units of
// data uniquely identified with a video ID v and chunk number c."

#ifndef VCDN_SRC_CORE_CHUNK_H_
#define VCDN_SRC_CORE_CHUNK_H_

#include <cstddef>
#include <cstdint>
#include <functional>

#include "src/trace/request.h"
#include "src/util/check.h"

namespace vcdn::core {

inline constexpr uint64_t kDefaultChunkBytes = 2ull << 20;  // 2 MB, as in the paper

using trace::VideoId;

struct ChunkId {
  VideoId video = 0;
  uint32_t index = 0;

  friend bool operator==(const ChunkId& a, const ChunkId& b) {
    return a.video == b.video && a.index == b.index;
  }
  friend bool operator<(const ChunkId& a, const ChunkId& b) {
    if (a.video != b.video) {
      return a.video < b.video;
    }
    return a.index < b.index;
  }
};

struct ChunkIdHash {
  size_t operator()(const ChunkId& c) const {
    // 64-bit mix of (video, index); videos dominate the entropy.
    uint64_t h = c.video * 0x9E3779B97F4A7C15ULL ^ (static_cast<uint64_t>(c.index) << 1);
    h ^= h >> 33;
    h *= 0xFF51AFD7ED558CCDULL;
    h ^= h >> 33;
    return static_cast<size_t>(h);
  }
};

// Inclusive chunk index range [first, last].
struct ChunkRange {
  uint32_t first = 0;
  uint32_t last = 0;

  uint32_t count() const {
    VCDN_DCHECK(last >= first);
    return last - first + 1;
  }
};

// Chunk range covered by the inclusive byte range of a request:
// [floor(b0 / K), floor(b1 / K)].
inline ChunkRange ToChunkRange(const trace::Request& r, uint64_t chunk_bytes) {
  VCDN_DCHECK(chunk_bytes > 0);
  VCDN_DCHECK(r.byte_end >= r.byte_begin);
  ChunkRange range;
  range.first = static_cast<uint32_t>(r.byte_begin / chunk_bytes);
  range.last = static_cast<uint32_t>(r.byte_end / chunk_bytes);
  return range;
}

}  // namespace vcdn::core

#endif  // VCDN_SRC_CORE_CHUNK_H_
