// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Cafe Cache (Sec. 6): Chunk-Aware, Fill-Efficient video cache.
//
// For each request R over chunk set S (missing subset S', eviction victims
// S''), Cafe serves iff the expected cost of serving is below the expected
// cost of redirecting:
//
//   E[serve]    = |S'| C_F + sum_{x in S''} (T / IAT_x) min(C_F, C_R)   (Eq. 6)
//   E[redirect] = |S|  C_R + sum_{x in S'} (T / IAT_x) min(C_F, C_R)   (Eq. 7)
//
// Chunk popularity is a per-chunk EWMA inter-arrival time (Eq. 8):
//   dt_x <- gamma (t - t_x) + (1 - gamma) dt_x;  t_x <- t
//
// Cached chunks are kept ordered under the *virtual timestamp* of Theorem 1
// evaluated at the fixed reference T0 = 0:
//   key_x = gamma * t_x - (1 - gamma) * dt_x
// which orders chunks identically to IAT at any time (smaller key <=> larger
// IAT <=> less popular). Keys must all be computed at one common T0 -- the
// in-text form key_x(t) = t - IAT_x(t) drifts by (1-gamma)t and is only
// consistent per Theorem 1's fixed-T0 statement; see cafe_cache_test.cc for
// the property test.
//
// The lookahead window T is the cache age, measured as the IAT of the least
// popular cached chunk. Chunks never seen before inherit the largest IAT
// among their video's cached chunks (Sec. 6's final optimization); failing
// that they contribute no expected future cost.
//
// The algorithm is templated on a container policy (containers.h): the
// production CafeCache orders chunks in flat ScoreHeaps and keeps stats in
// slab-backed FlatLruMaps; ReferenceCafeCache runs on the seed's
// OrderedKeySet/LruMap. Both are explicitly instantiated in cafe_cache.cc
// and must produce bit-identical replay results (ScoreHeap's tie-breaking
// matches OrderedKeySet's (score, id) order exactly).

#ifndef VCDN_SRC_CORE_CAFE_CACHE_H_
#define VCDN_SRC_CORE_CAFE_CACHE_H_

#include <array>
#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

#include "src/container/containers.h"
#include "src/container/fast_hash.h"
#include "src/core/cache_algorithm.h"

namespace vcdn::core {

struct CafeOptions {
  // EWMA smoothing factor gamma (Eq. 8); the paper uses 0.25 throughout.
  double gamma = 0.25;
  // History entries (tracked but uncached chunks) older than
  // retention_factor * cache_age / min(1, alpha) are garbage-collected,
  // mirroring xLRU's "historic data ... is regularly cleaned up".
  double history_retention_factor = 2.0;
  // Use the per-video largest-IAT estimate for never-seen chunks (the Sec. 6
  // optimization). Disabled in one ablation bench.
  bool estimate_unseen_from_video = true;

  // Proactive caching for spare ingress (Sec. 10 future work): during
  // off-peak hours ("such as proactive caching during early morning hours")
  // the cache prefetches the most popular *uncached* tracked chunks, as long
  // as they are more popular than the least popular cached chunk. Off-peak
  // is detected as the smoothed request rate dropping below
  // proactive_rate_threshold of the observed peak rate.
  bool proactive = false;
  double proactive_rate_threshold = 0.6;
  uint32_t proactive_fills_per_request = 2;
  // Smoothing for the request-rate estimate and decay of the peak tracker.
  double proactive_rate_smoothing = 0.02;
  // How much a spare (off-peak) ingress byte costs relative to C_F. The
  // point of Sec. 10's proactive caching is that night-time uplink capacity
  // is otherwise wasted, so its effective cost is below the C_F charged at
  // peak; a prefetch happens when its expected future savings exceed
  // C_F * this discount (1.0 = spare ingress is not actually cheaper).
  double proactive_cost_discount = 0.5;
};

template <typename Containers>
class CafeCacheT : public CacheAlgorithm {
 public:
  explicit CafeCacheT(const CacheConfig& config, const CafeOptions& options = {});

  std::string_view name() const override { return "Cafe"; }
  uint64_t used_chunks() const override { return cached_.size(); }
  bool ContainsChunk(const ChunkId& chunk) const override { return cached_.Contains(chunk); }

  // IAT of the least popular cached chunk at `now` (the window T / cache
  // age); 0 when the cache is empty. Exposed for tests.
  double CacheAge(double now) const;

  // Estimated IAT of a chunk at `now`: from its own history if tracked,
  // otherwise from its video's cached chunks, otherwise +infinity.
  // Exposed for tests.
  double EstimateIat(const ChunkId& chunk, double now) const;

  size_t tracked_history_chunks() const { return history_.size(); }

 protected:
  RequestOutcome HandleRequestImpl(const trace::Request& request) override;
  // Software-pipelined batch admission: pre-hashes every chunk id in the
  // batch and prefetches request i+k's probe buckets and slab slots while
  // request i runs the Eq. 6-7 cost model. Bit-identical to the base loop at
  // any batch size -- prefetching and hash reuse are pure scheduling.
  void HandleRequestBatchImpl(const trace::Request* requests, size_t count,
                              RequestOutcome* outcomes) override;
  // Evicts least popular first; the victims' stats move to history, so a
  // cold restart loses the disk but keeps the popularity signal.
  uint64_t EvictDownTo(uint64_t max_chunks) override;
  void OnAttachMetrics(obs::MetricsRegistry& registry, const std::string& prefix) override;
  void OnOutcomeRecorded() override;

 private:
  struct ChunkStat {
    double dt = 0.0;      // EWMA-smoothed inter-arrival time
    double t_last = 0.0;  // last access time
  };

  // How many requests ahead the batched path issues prefetches: far enough
  // that the probe lines arrive before use (~1 request's work per step, a
  // few hundred cycles), near enough that they are not evicted again and at
  // most ~3 requests' worth of hints are in flight. See docs/PERFORMANCE.md.
  static constexpr size_t kPrefetchDistance = 4;

  // Pre-hashed probe targets of one request. Every ChunkId-keyed flat
  // structure (cached_, cached_stats_, history_, history_by_key_) and both
  // VideoId-keyed ones (video_seen_, video_chunks_) share their respective
  // mixed hash, so one pass covers all probes of the request.
  struct RequestHashes {
    uint32_t video_hash = 0;
    std::vector<uint32_t> chunk_hashes;  // one per chunk of the range
  };

  double IatOf(const ChunkStat& stat, double now) const;
  // Theorem-1 virtual timestamp at T0 = 0.
  double VirtualKey(const ChunkStat& stat) const;
  void UpdateStat(ChunkStat& stat, double now) const;
  void CleanupHistory(double now);

  // The single-request admission path, shared by the unbatched and batched
  // entry points; `hashes` must be ComputeHashes of `request`.
  RequestOutcome HandleOne(const trace::Request& request, const RequestHashes& hashes);
  void ComputeHashes(const trace::Request& request, RequestHashes& out) const;
  // Issues the prefetch hints for a request about to be handled (no-ops on
  // the reference containers).
  void PrefetchFor(const RequestHashes& hashes) const;

  // EstimateIat split for call sites that already know probe outcomes:
  // `chunk` known uncached (skips the cached_stats_ probe) ...
  double EstimateIatUncached(const ChunkId& chunk, uint32_t chunk_hash, uint32_t video_hash,
                             double now) const;
  // ... or known uncached and untracked (straight to the per-video largest
  // cached IAT of Sec. 6, or +infinity).
  double EstimateIatFromVideo(VideoId video, uint32_t video_hash, double now) const;

  // History bookkeeping. history_by_key_ (the proactive-fill candidate pool)
  // is only maintained when options_.proactive is set -- nothing reads it
  // otherwise, and its upkeep was a measurable share of the hot path.
  void HistoryPut(const ChunkId& chunk, const ChunkStat& stat, uint32_t chunk_hash);
  void HistoryErase(const ChunkId& chunk, uint32_t chunk_hash);
  // Moves a chunk's stat into the cached structures.
  void CacheInsert(const ChunkId& chunk, const ChunkStat& stat, uint32_t chunk_hash,
                   uint32_t video_hash);
  // Evicts a cached chunk, moving its stat back to history.
  void CacheEvict(const ChunkId& chunk);
  // Off-peak prefetching; returns the number of chunks filled.
  uint32_t ProactiveFill(double now);

  CafeOptions options_;

  // Cached chunks ordered by virtual timestamp (Top() = least popular),
  // plus their popularity stats (recency order unused; the map is the flat
  // slab store).
  typename Containers::template MinHeapT<ChunkId, double, ChunkIdHash> cached_;
  typename Containers::template LruMapT<ChunkId, ChunkStat, ChunkIdHash> cached_stats_;
  // Chunks of each video currently on disk (for the unseen-chunk estimate).
  typename Containers::ChunkSetMapT video_chunks_;
  // Popularity history of chunks *not* on disk, in recency order for cleanup.
  typename Containers::template LruMapT<ChunkId, ChunkStat, ChunkIdHash> history_;
  // The same chunks ordered by virtual timestamp (Top() = most popular
  // uncached chunk), the proactive-fill candidate pool.
  typename Containers::template MaxHeapT<ChunkId, double, ChunkIdHash> history_by_key_;
  // Videos ever seen (recency-ordered, cleaned with history_); a request for
  // a never-seen video is always redirected, as in xLRU.
  typename Containers::template LruMapT<VideoId, double> video_seen_;
  double first_request_time_ = -1.0;

  // Request-rate tracking for off-peak detection.
  double last_arrival_ = -1.0;
  double rate_estimate_ = 0.0;
  double peak_rate_ = 0.0;

  // Reused across requests so the serve path does not allocate in steady
  // state.
  std::vector<ChunkId> all_chunks_scratch_;
  std::vector<ChunkId> missing_scratch_;
  std::vector<std::pair<ChunkId, double>> victims_scratch_;
  std::vector<uint8_t> contains_scratch_;
  std::vector<uint32_t> missing_hash_scratch_;
  // Hash scratch: one slot for the unbatched path, a ring of
  // kPrefetchDistance + 1 slots for the batched path (slot i + distance is
  // being written while slot i is being consumed; they never overlap).
  RequestHashes own_hashes_;
  std::array<RequestHashes, kPrefetchDistance + 1> batch_hashes_;

  // Observability (no-ops until AttachMetrics): the admission-decision mix of
  // Eqs. (6)-(7) and the popularity-tracking queue depths.
  obs::Counter admit_serve_total_;
  obs::Counter admit_redirect_cost_total_;
  obs::Counter admit_redirect_unseen_total_;
  obs::Counter admit_redirect_too_wide_total_;
  obs::Counter proactive_fill_rounds_total_;
  obs::Gauge history_chunks_gauge_;
  obs::Gauge tracked_videos_gauge_;
  obs::Gauge cache_age_gauge_;
  obs::Gauge request_rate_gauge_;
};

extern template class CafeCacheT<container::FlatContainers>;
extern template class CafeCacheT<container::ReferenceContainers>;

// The production cache runs on the flat containers; the reference
// instantiation exists for A/B benchmarking and differential tests.
using CafeCache = CafeCacheT<container::FlatContainers>;
using ReferenceCafeCache = CafeCacheT<container::ReferenceContainers>;

}  // namespace vcdn::core

#endif  // VCDN_SRC_CORE_CAFE_CACHE_H_
