// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/core/baseline_caches.h"

#include <cmath>
#include <limits>

namespace vcdn::core {

namespace {
constexpr double kInfinity = std::numeric_limits<double>::infinity();
}  // namespace

RequestOutcome AlwaysFillLruCache::HandleRequestImpl(const trace::Request& request) {
  const double now = request.arrival_time;
  RequestOutcome outcome = MakeOutcome(request);
  ChunkRange range = ToChunkRange(request, config_.chunk_bytes);
  if (range.count() > config_.disk_capacity_chunks) {
    outcome.decision = Decision::kRedirect;
    return outcome;
  }

  std::vector<uint32_t>& missing = missing_scratch_;
  missing.clear();
  for (uint32_t c = range.first; c <= range.last; ++c) {
    ChunkId chunk{request.video, c};
    if (double* at = disk_.GetAndTouch(chunk)) {
      *at = now;
      ++outcome.hit_chunks;
    } else {
      missing.push_back(c);
    }
  }
  uint64_t needed = disk_.size() + missing.size();
  uint64_t to_evict =
      needed > config_.disk_capacity_chunks ? needed - config_.disk_capacity_chunks : 0;
  for (uint64_t i = 0; i < to_evict; ++i) {
    disk_.PopOldest();
    ++outcome.evicted_chunks;
  }
  for (uint32_t c : missing) {
    disk_.InsertOrTouch(ChunkId{request.video, c}, now);
    ++outcome.filled_chunks;
  }
  outcome.decision = Decision::kServe;
  return outcome;
}

uint64_t AlwaysFillLruCache::EvictDownTo(uint64_t max_chunks) {
  uint64_t evicted = 0;
  while (disk_.size() > max_chunks) {
    disk_.PopOldest();
    ++evicted;
  }
  return evicted;
}

double FillLfuCache::BumpKey(double old_key, double now) const {
  // Count in the "reference frame" of time `now`: 2^(key - now/halflife).
  double phase = now / aging_halflife_;
  double aged_count = std::exp2(old_key - phase);
  return std::log2(aged_count + 1.0) + phase;
}

RequestOutcome FillLfuCache::HandleRequestImpl(const trace::Request& request) {
  const double now = request.arrival_time;
  RequestOutcome outcome = MakeOutcome(request);
  ChunkRange range = ToChunkRange(request, config_.chunk_bytes);
  if (range.count() > config_.disk_capacity_chunks) {
    outcome.decision = Decision::kRedirect;
    return outcome;
  }

  std::vector<ChunkId>& missing = missing_scratch_;
  missing.clear();
  for (uint32_t c = range.first; c <= range.last; ++c) {
    ChunkId chunk{request.video, c};
    const double* key = cached_.GetScore(chunk);
    if (key != nullptr) {
      ++outcome.hit_chunks;
      cached_.InsertOrUpdate(chunk, BumpKey(*key, now));
    } else {
      missing.push_back(chunk);
    }
  }
  uint64_t needed = cached_.size() + missing.size();
  uint64_t to_evict =
      needed > config_.disk_capacity_chunks ? needed - config_.disk_capacity_chunks : 0;
  if (to_evict > 0) {
    // The chunks of this request were just bumped (count >= 1 at now), so a
    // fresh fill (count exactly 1) ties at worst and id-order tie-breaking
    // cannot evict a chunk inserted in this same loop... except pathological
    // id ties; skip current-request chunks defensively. Collecting the
    // victims in one ordered scan is equivalent to the reference's
    // erase-min-per-round loop: erasing a victim does not reorder the rest.
    std::vector<ChunkId>& victims = victims_scratch_;
    victims.clear();
    cached_.ScanInOrder([&](const auto& item) {
      const ChunkId& chunk = item.second;
      if (chunk.video == request.video && chunk.index >= range.first &&
          chunk.index <= range.last) {
        return true;
      }
      victims.push_back(chunk);
      return victims.size() < to_evict;
    });
    VCDN_CHECK(victims.size() == to_evict);
    for (const ChunkId& victim : victims) {
      cached_.Erase(victim);
      ++outcome.evicted_chunks;
    }
  }
  double fresh_key = std::log2(1.0) + now / aging_halflife_;  // count = 1
  for (const ChunkId& chunk : missing) {
    cached_.InsertOrUpdate(chunk, fresh_key);
    ++outcome.filled_chunks;
  }
  outcome.decision = Decision::kServe;
  return outcome;
}

uint64_t FillLfuCache::EvictDownTo(uint64_t max_chunks) {
  uint64_t evicted = 0;
  while (cached_.size() > max_chunks) {
    cached_.PopTop();  // least frequent first
    ++evicted;
  }
  return evicted;
}

void BeladyCache::Prepare(const trace::Trace& trace) {
  futures_.clear();
  futures_.reserve(trace.requests.size());
  for (const trace::Request& r : trace.requests) {
    ChunkRange range = ToChunkRange(r, config_.chunk_bytes);
    for (uint32_t c = range.first; c <= range.last; ++c) {
      futures_[ChunkId{r.video, c}].times.push_back(r.arrival_time);
    }
  }
  prepared_ = true;
}

uint64_t BeladyCache::EvictDownTo(uint64_t max_chunks) {
  uint64_t evicted = 0;
  while (cached_.size() > max_chunks) {
    cached_.PopTop();  // farthest future first
    ++evicted;
  }
  return evicted;
}

RequestOutcome BeladyCache::HandleRequestImpl(const trace::Request& request) {
  VCDN_CHECK_MSG(prepared_, "BeladyCache::Prepare() must run before replay");
  const double now = request.arrival_time;
  RequestOutcome outcome = MakeOutcome(request);
  ChunkRange range = ToChunkRange(request, config_.chunk_bytes);
  if (range.count() > config_.disk_capacity_chunks) {
    outcome.decision = Decision::kRedirect;
    return outcome;
  }

  std::vector<ChunkId>& missing = missing_scratch_;
  missing.clear();
  for (uint32_t c = range.first; c <= range.last; ++c) {
    ChunkId chunk{request.video, c};
    auto it = futures_.find(chunk);
    VCDN_CHECK(it != futures_.end());
    FutureList& future = it->second;
    while (future.next < future.times.size() && future.times[future.next] <= now) {
      ++future.next;
    }
    double next_time =
        future.next < future.times.size() ? future.times[future.next] : kInfinity;
    if (cached_.Contains(chunk)) {
      ++outcome.hit_chunks;
      cached_.InsertOrUpdate(chunk, next_time);
    } else {
      missing.push_back(chunk);
      (void)next_time;
    }
  }

  uint64_t needed = cached_.size() + missing.size();
  uint64_t to_evict =
      needed > config_.disk_capacity_chunks ? needed - config_.disk_capacity_chunks : 0;
  for (uint64_t i = 0; i < to_evict; ++i) {
    // The farthest-future chunk cannot be one of this request's chunks: hits
    // were just re-keyed to imminent times and misses are not cached yet.
    cached_.PopTop();
    ++outcome.evicted_chunks;
  }
  for (const ChunkId& chunk : missing) {
    const FutureList& future = futures_.find(chunk)->second;
    double next_time =
        future.next < future.times.size() ? future.times[future.next] : kInfinity;
    cached_.InsertOrUpdate(chunk, next_time);
    ++outcome.filled_chunks;
  }
  outcome.decision = Decision::kServe;
  return outcome;
}

}  // namespace vcdn::core
