// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Optimal Cache (Sec. 7): the offline caching problem as an Integer Program,
// LP-relaxed to obtain "a guaranteed, theoretical lower bound on the
// achievable cost -- equivalently, an upper bound on cache efficiency".
//
// Two equivalent LP formulations are provided:
//
//  * kPaperExact -- the formulation of Eqs. (10)-(12) verbatim: per-chunk,
//    per-time presence variables x_{j,t}, fill counters y_{j,t} >= |dx| and
//    admission variables a_t, with fills costed as |dx|/2 * C_F (each fill
//    plus its eventual eviction contributes two half-units; chunks still
//    cached at the horizon keep half a unit of credit). O(J*T) variables --
//    usable for small instances and as the reference in tests.
//
//  * kIntervalReduced -- an equivalent formulation over chunk-request
//    intervals: per request of chunk j, a presence variable p_{j,i} (at the
//    request) and a keep variable w_{j,i} (through the following interval).
//    Optimal solutions of (10) change x only at request times of the chunk,
//    so both LPs have the same optimum (asserted by tests); this one has
//    ~3 rows per chunk-request incidence instead of ~3*J rows per time step.
//
// The LP cost is measured in chunks (|R_t|_c in Eq. (10a)), so the matching
// cache-efficiency metric is ReplayTotals::ChunkEfficiency.

#ifndef VCDN_SRC_CORE_OPTIMAL_CACHE_H_
#define VCDN_SRC_CORE_OPTIMAL_CACHE_H_

#include <cstdint>
#include <string>

#include "src/core/cache_algorithm.h"
#include "src/lp/simplex.h"
#include "src/trace/request.h"

namespace vcdn::core {

enum class OptimalFormulation {
  kPaperExact,
  kIntervalReduced,
};

struct OptimalOptions {
  OptimalFormulation formulation = OptimalFormulation::kIntervalReduced;
  // Objective accounting for fills:
  //   false (default): each fill costs a full C_F -- the same accounting the
  //     online algorithms are measured under (ReplayTotals), so bounds and
  //     measurements are directly comparable. Still a valid lower bound.
  //   true: the paper's literal |x_{j,t} - x_{j,t-1}|/2 objective (Eq. 10a),
  //     where a fill and its eventual eviction cost half a C_F each; a chunk
  //     still cached at the horizon has paid only C_F/2. Looser on short
  //     traces (it under-charges never-evicted fills) but matches Eq. (10a)
  //     exactly.
  bool use_paper_half_cost = false;
  lp::SimplexOptions simplex;
};

struct OptimalBound {
  lp::SolveStatus status = lp::SolveStatus::kNumericalFailure;
  // LP-relaxed minimum total cost (Eq. (10a)/(11)), in chunk units.
  double total_cost = 0.0;
  // The corresponding upper bound on chunk-granular cache efficiency:
  // 1 - total_cost / total_requested_chunks.
  double efficiency_bound = 0.0;
  uint64_t total_requested_chunks = 0;
  // LP dimensions and effort, for reporting.
  int32_t num_rows = 0;
  int32_t num_columns = 0;
  lp::SimplexStats stats;
};

// Result of the exact Integer Program (branch & bound over the LP): the true
// offline optimum of Problem 2, for limited scales (Sec. 10 future work).
struct OptimalExactResult {
  lp::SolveStatus status = lp::SolveStatus::kNumericalFailure;
  double total_cost = 0.0;
  double efficiency = 0.0;
  uint64_t total_requested_chunks = 0;
  int64_t nodes_explored = 0;
  // LP relaxation at the root, for integrality-gap reporting.
  double root_relaxation_cost = 0.0;
  // Total simplex effort across all node relaxations.
  lp::SimplexStats stats;
};

// Solves the offline LP bound for a full request sequence against a given
// disk size / alpha (Problem 2 of Sec. 4.3, relaxed).
class OptimalCacheSolver {
 public:
  OptimalCacheSolver(const CacheConfig& config, const OptimalOptions& options = {});

  OptimalBound SolveBound(const trace::Trace& trace) const;

  // Exact integral optimum via branch & bound on the interval formulation.
  // Exponential worst case -- use on downsampled instances only.
  OptimalExactResult SolveExact(const trace::Trace& trace, int64_t max_nodes = 100000) const;

 private:
  OptimalBound SolvePaperExact(const trace::Trace& trace) const;
  OptimalBound SolveIntervalReduced(const trace::Trace& trace) const;

  CacheConfig config_;
  CostModel cost_;
  OptimalOptions options_;
};

}  // namespace vcdn::core

#endif  // VCDN_SRC_CORE_OPTIMAL_CACHE_H_
