// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/core/optimal_cache.h"

#include <unordered_map>
#include <vector>

#include "src/lp/branch_and_bound.h"
#include "src/lp/model.h"
#include "src/util/check.h"

namespace vcdn::core {

namespace {

// Preprocessed request sequence: unique chunks and their request steps.
struct Incidence {
  std::vector<std::vector<int32_t>> chunks_of_step;  // step -> unique chunk ids
  std::vector<std::vector<int32_t>> steps_of_chunk;  // chunk -> ascending steps
  uint64_t total_requested_chunks = 0;
};

Incidence BuildIncidence(const trace::Trace& trace, uint64_t chunk_bytes) {
  Incidence inc;
  inc.chunks_of_step.resize(trace.requests.size());
  std::unordered_map<ChunkId, int32_t, ChunkIdHash> chunk_index;
  for (size_t t = 0; t < trace.requests.size(); ++t) {
    ChunkRange range = ToChunkRange(trace.requests[t], chunk_bytes);
    inc.total_requested_chunks += range.count();
    for (uint32_t c = range.first; c <= range.last; ++c) {
      ChunkId chunk{trace.requests[t].video, c};
      auto [it, inserted] = chunk_index.emplace(chunk, static_cast<int32_t>(chunk_index.size()));
      if (inserted) {
        inc.steps_of_chunk.emplace_back();
      }
      inc.chunks_of_step[t].push_back(it->second);
      inc.steps_of_chunk[static_cast<size_t>(it->second)].push_back(static_cast<int32_t>(t));
    }
  }
  return inc;
}

}  // namespace

OptimalCacheSolver::OptimalCacheSolver(const CacheConfig& config, const OptimalOptions& options)
    : config_(config), cost_(config.alpha_f2r), options_(options) {
  VCDN_CHECK(config.disk_capacity_chunks > 0);
}

OptimalBound OptimalCacheSolver::SolveBound(const trace::Trace& trace) const {
  switch (options_.formulation) {
    case OptimalFormulation::kPaperExact:
      return SolvePaperExact(trace);
    case OptimalFormulation::kIntervalReduced:
      return SolveIntervalReduced(trace);
  }
  VCDN_CHECK_MSG(false, "unknown formulation");
  return {};
}

// Eqs. (10)-(12) verbatim, with y <= 1 and the {0,1} -> [0,1] relaxation
// expressed as variable bounds.
OptimalBound OptimalCacheSolver::SolvePaperExact(const trace::Trace& trace) const {
  Incidence inc = BuildIncidence(trace, config_.chunk_bytes);
  auto num_steps = static_cast<int32_t>(trace.requests.size());
  auto num_chunks = static_cast<int32_t>(inc.steps_of_chunk.size());
  const double fill_cost = cost_.fill_cost();
  const double redirect_cost = cost_.redirect_cost();

  lp::Model model;
  double constant = 0.0;

  // m_{j,t} membership for O(1) lookup.
  std::vector<std::vector<bool>> requested(static_cast<size_t>(num_chunks),
                                           std::vector<bool>(static_cast<size_t>(num_steps), false));
  for (int32_t t = 0; t < num_steps; ++t) {
    for (int32_t j : inc.chunks_of_step[static_cast<size_t>(t)]) {
      requested[static_cast<size_t>(j)][static_cast<size_t>(t)] = true;
    }
  }

  // Variables x_{j,t} (presence), y_{j,t} (|dx|, objective C_F/2), a_t.
  auto x_var = [&](int32_t j, int32_t t) {
    return j * num_steps + t;
  };
  for (int32_t j = 0; j < num_chunks; ++j) {
    for (int32_t t = 0; t < num_steps; ++t) {
      // (10e) at t=0: x_{j,1} <= x_{j,0} = 0 when the chunk is not requested
      // at the first step.
      double upper = (t == 0 && !requested[static_cast<size_t>(j)][0]) ? 0.0 : 1.0;
      model.AddVariable(0.0, upper, 0.0);
    }
  }
  // Fill accounting: with the paper's half-cost objective y >= |dx| and each
  // transition costs C_F/2; with full-cost accounting y >= max(0, dx) (rises
  // only) and each fill costs C_F.
  const bool half_cost = options_.use_paper_half_cost;
  const double y_cost = half_cost ? fill_cost / 2.0 : fill_cost;
  int32_t y_base = model.num_columns();
  auto y_var = [&](int32_t j, int32_t t) { return y_base + j * num_steps + t; };
  for (int32_t j = 0; j < num_chunks; ++j) {
    for (int32_t t = 0; t < num_steps; ++t) {
      (void)j;
      model.AddVariable(0.0, 1.0, y_cost);  // (11), (12c)
    }
  }
  int32_t a_base = model.num_columns();
  for (int32_t t = 0; t < num_steps; ++t) {
    auto request_chunks =
        static_cast<double>(inc.chunks_of_step[static_cast<size_t>(t)].size());
    // (1 - a_t) * C_R * |R_t|_c  ==  constant - a_t * C_R * |R_t|_c.
    model.AddVariable(0.0, 1.0, -redirect_cost * request_chunks);
    constant += redirect_cost * request_chunks;
  }

  for (int32_t j = 0; j < num_chunks; ++j) {
    for (int32_t t = 0; t < num_steps; ++t) {
      if (requested[static_cast<size_t>(j)][static_cast<size_t>(t)]) {
        // (10d): x_{j,t} >= a_t.
        int32_t row = model.AddRow(-lp::kLpInfinity, 0.0);
        model.AddCoefficient(row, a_base + t, 1.0);
        model.AddCoefficient(row, x_var(j, t), -1.0);
      } else if (t > 0) {
        // (10e): x_{j,t} <= x_{j,t-1}.
        int32_t row = model.AddRow(-lp::kLpInfinity, 0.0);
        model.AddCoefficient(row, x_var(j, t), 1.0);
        model.AddCoefficient(row, x_var(j, t - 1), -1.0);
      }
      // (12a): y >= x_t - x_{t-1} with x_{j,0-1} = 0.
      int32_t rise = model.AddRow(-lp::kLpInfinity, 0.0);
      model.AddCoefficient(rise, x_var(j, t), 1.0);
      model.AddCoefficient(rise, y_var(j, t), -1.0);
      if (t > 0) {
        model.AddCoefficient(rise, x_var(j, t - 1), -1.0);
      }
      if (half_cost) {
        // (12b): y >= x_{t-1} - x_t (evictions also count transitions).
        int32_t fall = model.AddRow(-lp::kLpInfinity, 0.0);
        model.AddCoefficient(fall, x_var(j, t), -1.0);
        model.AddCoefficient(fall, y_var(j, t), -1.0);
        if (t > 0) {
          model.AddCoefficient(fall, x_var(j, t - 1), 1.0);
        }
      }
    }
  }
  // (10f): capacity.
  for (int32_t t = 0; t < num_steps; ++t) {
    int32_t row = model.AddRow(-lp::kLpInfinity, static_cast<double>(config_.disk_capacity_chunks));
    for (int32_t j = 0; j < num_chunks; ++j) {
      model.AddCoefficient(row, x_var(j, t), 1.0);
    }
  }

  lp::Solution lp_solution = lp::SolveModel(model, options_.simplex);
  OptimalBound bound;
  bound.status = lp_solution.status;
  bound.total_cost = lp_solution.objective + constant;
  bound.total_requested_chunks = inc.total_requested_chunks;
  bound.efficiency_bound =
      inc.total_requested_chunks == 0
          ? 0.0
          : 1.0 - bound.total_cost / static_cast<double>(inc.total_requested_chunks);
  bound.num_rows = model.num_rows();
  bound.num_columns = model.num_columns();
  bound.stats = lp_solution.stats;
  return bound;
}

// Interval formulation: for chunk j with request steps tau_0 < ... < tau_{k-1},
//   p_{j,i} in [0,1]: presence at tau_i (after any fill),
//   w_{j,i} in [0,1]: presence kept through (tau_i, tau_{i+1}) (w_{j,k-1}:
//                     kept to the horizon).
// Fills are f_{j,i} = p_{j,i} - w_{j,i-1} >= 0, costed C_F each; the paper's
// |dx|/2 objective equals C_F * fills - (C_F/2) * (presence at horizon),
// hence the half-credit on w_{j,k-1}. Admission: p_{j,i} >= a_t. Capacity is
// enforced at every request step over p (chunks requested now) and w (chunks
// in an open interval).
namespace {

// The compiled interval formulation plus its bookkeeping.
struct IntervalModel {
  lp::Model model;
  double constant = 0.0;
  Incidence incidence;
};

IntervalModel BuildIntervalModel(const trace::Trace& trace, const CacheConfig& config,
                                 const CostModel& cost, bool use_paper_half_cost) {
  IntervalModel out;
  out.incidence = BuildIncidence(trace, config.chunk_bytes);
  const Incidence& inc = out.incidence;
  auto num_steps = static_cast<int32_t>(trace.requests.size());
  auto num_chunks = static_cast<int32_t>(inc.steps_of_chunk.size());
  const double fill_cost = cost.fill_cost();
  const double redirect_cost = cost.redirect_cost();

  lp::Model& model = out.model;
  double& constant = out.constant;

  // a_t first.
  for (int32_t t = 0; t < num_steps; ++t) {
    auto request_chunks =
        static_cast<double>(inc.chunks_of_step[static_cast<size_t>(t)].size());
    model.AddVariable(0.0, 1.0, -redirect_cost * request_chunks);
    constant += redirect_cost * request_chunks;
  }
  auto a_var = [](int32_t t) { return t; };

  // p/w variables per chunk-request incidence.
  std::vector<std::vector<int32_t>> p_vars(static_cast<size_t>(num_chunks));
  std::vector<std::vector<int32_t>> w_vars(static_cast<size_t>(num_chunks));
  for (int32_t j = 0; j < num_chunks; ++j) {
    const auto& steps = inc.steps_of_chunk[static_cast<size_t>(j)];
    auto k = steps.size();
    for (size_t i = 0; i < k; ++i) {
      p_vars[static_cast<size_t>(j)].push_back(model.AddVariable(0.0, 1.0, fill_cost));
      // Interior keeps offset the next fill's cost in full. The final keep
      // earns the paper's half-credit under half-cost accounting (a chunk
      // cached at the horizon was only charged the fill transition), and
      // nothing under full-cost accounting.
      double w_obj;
      if (i + 1 == k) {
        w_obj = use_paper_half_cost ? -fill_cost / 2.0 : 0.0;
      } else {
        w_obj = -fill_cost;
      }
      w_vars[static_cast<size_t>(j)].push_back(model.AddVariable(0.0, 1.0, w_obj));
    }
  }

  // Per-incidence rows.
  for (int32_t j = 0; j < num_chunks; ++j) {
    const auto& steps = inc.steps_of_chunk[static_cast<size_t>(j)];
    const auto& p = p_vars[static_cast<size_t>(j)];
    const auto& w = w_vars[static_cast<size_t>(j)];
    for (size_t i = 0; i < steps.size(); ++i) {
      // Admission: a_t - p_{j,i} <= 0.
      int32_t admit = model.AddRow(-lp::kLpInfinity, 0.0);
      model.AddCoefficient(admit, a_var(steps[i]), 1.0);
      model.AddCoefficient(admit, p[i], -1.0);
      // Keep at most presence: w_{j,i} - p_{j,i} <= 0.
      int32_t keep = model.AddRow(-lp::kLpInfinity, 0.0);
      model.AddCoefficient(keep, w[i], 1.0);
      model.AddCoefficient(keep, p[i], -1.0);
      // Fill non-negativity: w_{j,i-1} - p_{j,i} <= 0.
      if (i > 0) {
        int32_t fill = model.AddRow(-lp::kLpInfinity, 0.0);
        model.AddCoefficient(fill, w[i - 1], 1.0);
        model.AddCoefficient(fill, p[i], -1.0);
      }
    }
  }

  // Capacity rows: sweep steps, tracking each chunk's open interval.
  std::vector<int32_t> active_w(static_cast<size_t>(num_chunks), -1);
  std::vector<size_t> next_incidence(static_cast<size_t>(num_chunks), 0);
  std::vector<bool> requested_now(static_cast<size_t>(num_chunks), false);
  std::vector<int32_t> ever_active;
  ever_active.reserve(static_cast<size_t>(num_chunks));
  for (int32_t t = 0; t < num_steps; ++t) {
    const auto& now = inc.chunks_of_step[static_cast<size_t>(t)];
    int32_t row = model.AddRow(-lp::kLpInfinity, static_cast<double>(config.disk_capacity_chunks));
    for (int32_t j : now) {
      requested_now[static_cast<size_t>(j)] = true;
      size_t i = next_incidence[static_cast<size_t>(j)];
      model.AddCoefficient(row, p_vars[static_cast<size_t>(j)][i], 1.0);
    }
    for (int32_t j : ever_active) {
      if (!requested_now[static_cast<size_t>(j)]) {
        model.AddCoefficient(row, active_w[static_cast<size_t>(j)], 1.0);
      }
    }
    for (int32_t j : now) {
      size_t i = next_incidence[static_cast<size_t>(j)]++;
      if (active_w[static_cast<size_t>(j)] < 0) {
        ever_active.push_back(j);
      }
      active_w[static_cast<size_t>(j)] = w_vars[static_cast<size_t>(j)][i];
      requested_now[static_cast<size_t>(j)] = false;
    }
  }

  return out;
}

}  // namespace

OptimalBound OptimalCacheSolver::SolveIntervalReduced(const trace::Trace& trace) const {
  IntervalModel built =
      BuildIntervalModel(trace, config_, cost_, options_.use_paper_half_cost);
  lp::Solution lp_solution = lp::SolveModel(built.model, options_.simplex);
  OptimalBound bound;
  bound.status = lp_solution.status;
  bound.total_cost = lp_solution.objective + built.constant;
  bound.total_requested_chunks = built.incidence.total_requested_chunks;
  bound.efficiency_bound =
      bound.total_requested_chunks == 0
          ? 0.0
          : 1.0 - bound.total_cost / static_cast<double>(bound.total_requested_chunks);
  bound.num_rows = built.model.num_rows();
  bound.num_columns = built.model.num_columns();
  bound.stats = lp_solution.stats;
  return bound;
}

OptimalExactResult OptimalCacheSolver::SolveExact(const trace::Trace& trace,
                                                  int64_t max_nodes) const {
  IntervalModel built =
      BuildIntervalModel(trace, config_, cost_, options_.use_paper_half_cost);
  // All structural variables are 0/1 in the IP; branch & bound only ever
  // branches on the ones that come out fractional.
  std::vector<int32_t> integer_columns(static_cast<size_t>(built.model.num_columns()));
  for (int32_t c = 0; c < built.model.num_columns(); ++c) {
    integer_columns[static_cast<size_t>(c)] = c;
  }
  lp::BranchAndBoundOptions bb_options;
  bb_options.simplex = options_.simplex;
  bb_options.max_nodes = max_nodes;
  lp::MipSolution mip = lp::SolveMip(built.model, integer_columns, bb_options);

  OptimalExactResult result;
  result.status = mip.status;
  result.total_cost = mip.objective + built.constant;
  result.root_relaxation_cost = mip.root_relaxation + built.constant;
  result.total_requested_chunks = built.incidence.total_requested_chunks;
  result.nodes_explored = mip.nodes_explored;
  result.stats = mip.simplex_stats;
  result.efficiency =
      result.total_requested_chunks == 0
          ? 0.0
          : 1.0 - result.total_cost / static_cast<double>(result.total_requested_chunks);
  return result;
}

}  // namespace vcdn::core
