// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// xLRU Cache (Sec. 5, Fig. 1): an LRU chunk disk cache guarded by a
// video-level popularity tracker.
//
//   HandleRequest(R):
//     t = VideoPopularityTracker.LastAccessTime(R.v)
//     VideoPopularityTracker.Update(R.v, t_now)
//     if t == NULL or (t_now - t) * alpha_F2R > DiskCache.CacheAge():
//       return REDIRECT                                    // Eq. (5)
//     S = DiskCache.MissingChunks([R.c0, R.c1])
//     DiskCache.EvictOldest(S.size()); DiskCache.Fill(S)
//     return SERVE
//
// The popularity test models a video's popularity as the inter-arrival time
// (t_now - t) of its requests and admits it only if it is alpha_F2R times as
// popular as the least popular chunk on disk (whose IAT is estimated by the
// cache age). The warm-up case (disk not yet full) is not shown in the
// paper's pseudocode; here, while the disk has free space the age test is
// skipped (any previously seen video is admitted) but the
// never-seen-before -> redirect rule still applies, which is what makes the
// tracker meaningful from the first byte.
//
// The algorithm is templated on a container policy (containers.h): the
// production XlruCache runs on the flat slab containers, ReferenceXlruCache
// on the seed's node-based ones. Both are explicitly instantiated in
// xlru_cache.cc and must produce bit-identical replay results.

#ifndef VCDN_SRC_CORE_XLRU_CACHE_H_
#define VCDN_SRC_CORE_XLRU_CACHE_H_

#include <string_view>
#include <vector>

#include "src/container/containers.h"
#include "src/core/cache_algorithm.h"

namespace vcdn::core {

template <typename Containers>
class XlruCacheT : public CacheAlgorithm {
 public:
  explicit XlruCacheT(const CacheConfig& config);

  std::string_view name() const override { return "xLRU"; }
  uint64_t used_chunks() const override { return disk_.size(); }
  bool ContainsChunk(const ChunkId& chunk) const override { return disk_.Contains(chunk); }

  // Age of the least recently used chunk on disk relative to `now`; 0 when
  // empty. Exposed for tests.
  double CacheAge(double now) const;

  // Number of videos currently tracked by the popularity tracker.
  size_t tracked_videos() const { return tracker_.size(); }

 protected:
  RequestOutcome HandleRequestImpl(const trace::Request& request) override;
  uint64_t EvictDownTo(uint64_t max_chunks) override;  // LRU order
  void OnAttachMetrics(obs::MetricsRegistry& registry, const std::string& prefix) override;
  void OnOutcomeRecorded() override;

 private:
  // Drops tracker entries too old to ever pass the admission test again.
  void CleanupTracker(double now);

  // video -> last access time, in recency order for O(1) cleanup.
  typename Containers::template LruMapT<VideoId, double> tracker_;
  // {video, chunk} -> last access time, in recency order (LRU replacement).
  typename Containers::template LruMapT<ChunkId, double, ChunkIdHash> disk_;
  double last_request_time_ = 0.0;
  // Reused across requests so the serve loop does not allocate in steady
  // state.
  std::vector<uint32_t> missing_scratch_;

  // Observability (no-ops until AttachMetrics): why requests were redirected,
  // and the popularity-tracker queue occupancy.
  obs::Counter redirect_unseen_total_;
  obs::Counter redirect_age_total_;
  obs::Counter redirect_too_wide_total_;
  obs::Gauge tracker_videos_gauge_;
  obs::Gauge cache_age_gauge_;
};

extern template class XlruCacheT<container::FlatContainers>;
extern template class XlruCacheT<container::ReferenceContainers>;

// The production cache runs on the flat containers; the reference
// instantiation exists for A/B benchmarking and differential tests.
using XlruCache = XlruCacheT<container::FlatContainers>;
using ReferenceXlruCache = XlruCacheT<container::ReferenceContainers>;

}  // namespace vcdn::core

#endif  // VCDN_SRC_CORE_XLRU_CACHE_H_
