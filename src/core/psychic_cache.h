// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Psychic Cache (Sec. 8): an offline greedy cache aware of future requests,
// used as a fast estimator of the maximum efficiency any online algorithm
// could reach with perfect prediction of access patterns.
//
// Psychic keeps, for every chunk x, the list L_x of its future request times
// (bounded to the next N entries; the paper found N = 10 sufficient). A
// request is served or redirected by the Cafe-style cost comparison, with the
// expected-future terms computed directly from the future:
//
//   E[serve]    = |S'| C_F + sum_{x in S''} sum_{t in L_x} T/(t - t_now) * min(C_F, C_R)  (Eq. 13)
//   E[redirect] = |S|  C_R + sum_{x in S'} sum_{t in L_x} T/(t - t_now) * min(C_F, C_R)   (Eq. 14)
//
// Eviction victims S'' are the cached chunks requested farthest in the future
// (never-again-requested chunks first), Belady-style. The window T is the
// cache age, which -- with no past-request history -- is tracked as the
// average time evicted chunks had stayed in the cache.

#ifndef VCDN_SRC_CORE_PSYCHIC_CACHE_H_
#define VCDN_SRC_CORE_PSYCHIC_CACHE_H_

#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/container/flat_lru_map.h"
#include "src/container/score_heap.h"
#include "src/core/cache_algorithm.h"

namespace vcdn::core {

struct PsychicOptions {
  // How many future requests per chunk enter the cost sums ("N = 10 has
  // proven sufficient in our experiments -- no gain with higher values").
  size_t future_horizon = 10;
  // Smoothing for the evicted-chunk residence-time average (cache age).
  double age_smoothing = 0.05;
};

class PsychicCache : public CacheAlgorithm {
 public:
  PsychicCache(const CacheConfig& config, const PsychicOptions& options = {});

  // Indexes the full request sequence: per-chunk future arrival times.
  void Prepare(const trace::Trace& trace) override;
  bool requires_full_trace() const override { return true; }

  std::string_view name() const override { return "Psychic"; }
  uint64_t used_chunks() const override { return cached_.size(); }
  bool ContainsChunk(const ChunkId& chunk) const override { return cached_.Contains(chunk); }

  // Average residence time of evicted chunks (the window T); falls back to
  // the elapsed trace time before the first eviction. Exposed for tests.
  double CacheAge(double now) const;

 protected:
  RequestOutcome HandleRequestImpl(const trace::Request& request) override;
  // Evicts farthest-future first. Forced evictions (resize / cold restart)
  // skip the residence-time average: they say nothing about churn.
  uint64_t EvictDownTo(uint64_t max_chunks) override;
  void OnAttachMetrics(obs::MetricsRegistry& registry, const std::string& prefix) override;
  void OnOutcomeRecorded() override;

 private:
  struct FutureList {
    std::vector<double> times;  // all request arrival times for this chunk
    size_t next = 0;            // first index strictly in the future
  };

  // Sum over the next N future requests of T/(t - now); 0 if none.
  double FutureCost(const FutureList& future, double now, double window) const;
  // Arrival time of the chunk's next request, +infinity if none.
  double NextRequestTime(const FutureList& future) const;
  const FutureList* FindFuture(const ChunkId& chunk) const;

  PsychicOptions options_;
  bool prepared_ = false;

  std::unordered_map<ChunkId, FutureList, ChunkIdHash> futures_;
  // Cached chunks scored by next request time: Top() = farthest in the
  // future = first eviction victim (max-first heap, same (score, id) order
  // as the reference OrderedKeySet's reverse iteration).
  container::ScoreHeap<ChunkId, double, ChunkIdHash, /*kMaxFirst=*/true> cached_;
  // Fill time of each cached chunk, for residence-time tracking (recency
  // order unused; the map is the flat slab store).
  container::FlatLruMap<ChunkId, double, ChunkIdHash> fill_time_;

  double first_request_time_ = -1.0;
  double average_residence_ = 0.0;
  bool residence_initialized_ = false;

  // Reused across requests so the serve path does not allocate in steady
  // state.
  std::vector<ChunkId> all_chunks_scratch_;
  std::vector<ChunkId> missing_scratch_;
  std::vector<ChunkId> victims_scratch_;

  // Observability (no-ops until AttachMetrics).
  obs::Gauge window_gauge_;
  obs::Gauge tracked_futures_gauge_;
};

}  // namespace vcdn::core

#endif  // VCDN_SRC_CORE_PSYCHIC_CACHE_H_
