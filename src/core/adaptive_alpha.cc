// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/core/adaptive_alpha.h"

#include <algorithm>

namespace vcdn::core {

AdaptiveAlphaCache::AdaptiveAlphaCache(std::unique_ptr<CacheAlgorithm> inner,
                                       const AdaptiveAlphaOptions& options)
    : CacheAlgorithm(inner->config()),
      inner_(std::move(inner)),
      options_(options),
      alpha_(inner_->config().alpha_f2r) {
  VCDN_CHECK(options_.min_alpha > 0.0);
  VCDN_CHECK(options_.min_alpha <= options_.max_alpha);
  VCDN_CHECK(options_.step > 1.0);
  VCDN_CHECK(options_.target_ingress_fraction > 0.0);
  VCDN_CHECK(options_.adjust_interval_seconds > 0.0);
  name_ = "Adaptive(" + std::string(inner_->name()) + ")";
  alpha_ = std::clamp(alpha_, options_.min_alpha, options_.max_alpha);
  inner_->SetAlphaF2r(alpha_);
  CacheAlgorithm::SetAlphaF2r(alpha_);
}

void AdaptiveAlphaCache::SetAlphaF2r(double alpha_f2r) {
  alpha_ = std::clamp(alpha_f2r, options_.min_alpha, options_.max_alpha);
  inner_->SetAlphaF2r(alpha_);
  CacheAlgorithm::SetAlphaF2r(alpha_);
}

void AdaptiveAlphaCache::MaybeAdjust(double now) {
  if (window_start_ < 0.0) {
    window_start_ = now;
    return;
  }
  if (now - window_start_ < options_.adjust_interval_seconds) {
    return;
  }
  if (window_requests_ > 0) {
    // A window that served nothing has, by definition, no ingress: treat it
    // as fraction 0 so an over-tightened alpha gets relaxed again instead of
    // wedging the controller.
    double ingress_fraction =
        window_served_bytes_ > 0 ? static_cast<double>(window_filled_bytes_) /
                                       static_cast<double>(window_served_bytes_)
                                 : 0.0;
    double target = options_.target_ingress_fraction;
    if (ingress_fraction > target * (1.0 + options_.deadband)) {
      // Too much ingress: fill more conservatively.
      SetAlphaF2r(alpha_ * options_.step);
      ++adjustments_;
      adjustments_total_.Increment();
    } else if (ingress_fraction < target * (1.0 - options_.deadband)) {
      // Spare ingress budget: fill more eagerly.
      SetAlphaF2r(alpha_ / options_.step);
      ++adjustments_;
      adjustments_total_.Increment();
    }
  }
  window_start_ = now;
  window_served_bytes_ = 0;
  window_filled_bytes_ = 0;
  window_requests_ = 0;
}

void AdaptiveAlphaCache::OnAttachMetrics(obs::MetricsRegistry& registry,
                                         const std::string& prefix) {
  alpha_gauge_ = registry.GetGauge(prefix + "alpha_f2r");
  adjustments_total_ = registry.GetCounter(prefix + "alpha_adjustments_total");
  inner_->AttachMetrics(registry);
}

void AdaptiveAlphaCache::OnOutcomeRecorded() {
  alpha_gauge_.Set(alpha_);
}

RequestOutcome AdaptiveAlphaCache::HandleRequestImpl(const trace::Request& request) {
  MaybeAdjust(request.arrival_time);
  RequestOutcome outcome = inner_->HandleRequest(request);
  ++window_requests_;
  if (outcome.decision == Decision::kServe) {
    window_served_bytes_ += outcome.requested_bytes;
    window_filled_bytes_ +=
        static_cast<uint64_t>(outcome.filled_chunks + outcome.proactive_filled_chunks) *
        config_.chunk_bytes;
  }
  return outcome;
}

}  // namespace vcdn::core
