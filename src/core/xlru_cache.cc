// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/core/xlru_cache.h"

#include <algorithm>
#include <vector>

namespace vcdn::core {

namespace {
// Tracker entries older than cache_age / min(1, alpha) can never pass Eq. (5)
// again; a small safety factor avoids dropping entries right at the border
// while the cache age is still growing.
constexpr double kTrackerRetentionSlack = 1.25;
}  // namespace

template <typename C>
XlruCacheT<C>::XlruCacheT(const CacheConfig& config) : CacheAlgorithm(config) {
  disk_.Reserve(static_cast<size_t>(config.disk_capacity_chunks));
  // The cleanup horizon bounds the tracker to roughly the videos that could
  // still pass admission; disk capacity is a generous upper estimate.
  tracker_.Reserve(static_cast<size_t>(config.disk_capacity_chunks));
}

template <typename C>
double XlruCacheT<C>::CacheAge(double now) const {
  if (disk_.empty()) {
    return 0.0;
  }
  return now - disk_.Oldest().value;
}

template <typename C>
void XlruCacheT<C>::CleanupTracker(double now) {
  double age = CacheAge(now);
  if (age <= 0.0) {
    return;
  }
  double horizon = age / std::min(1.0, config_.alpha_f2r) * kTrackerRetentionSlack;
  while (!tracker_.empty() && now - tracker_.Oldest().value > horizon) {
    tracker_.PopOldest();
  }
}

template <typename C>
uint64_t XlruCacheT<C>::EvictDownTo(uint64_t max_chunks) {
  uint64_t evicted = 0;
  while (disk_.size() > max_chunks) {
    disk_.PopOldest();
    ++evicted;
  }
  return evicted;
}

template <typename C>
void XlruCacheT<C>::OnAttachMetrics(obs::MetricsRegistry& registry, const std::string& prefix) {
  redirect_unseen_total_ = registry.GetCounter(prefix + "redirect_unseen_total");
  redirect_age_total_ = registry.GetCounter(prefix + "redirect_age_total");
  redirect_too_wide_total_ = registry.GetCounter(prefix + "redirect_too_wide_total");
  tracker_videos_gauge_ = registry.GetGauge(prefix + "tracker_videos");
  cache_age_gauge_ = registry.GetGauge(prefix + "cache_age_seconds");
}

template <typename C>
void XlruCacheT<C>::OnOutcomeRecorded() {
  tracker_videos_gauge_.Set(static_cast<double>(tracker_.size()));
  cache_age_gauge_.Set(CacheAge(last_request_time_));
}

template <typename C>
RequestOutcome XlruCacheT<C>::HandleRequestImpl(const trace::Request& request) {
  const double now = request.arrival_time;
  last_request_time_ = now;
  RequestOutcome outcome = MakeOutcome(request);
  ChunkRange range = ToChunkRange(request, config_.chunk_bytes);

  // Popularity test (Fig. 1 lines 1-4): read the previous access time, then
  // record this access.
  const double* last = tracker_.Peek(request.video);
  bool seen_before = last != nullptr;
  double last_time = seen_before ? *last : 0.0;
  *tracker_.InsertOrTouch(request.video) = now;
  CleanupTracker(now);

  bool disk_full = disk_.size() >= config_.disk_capacity_chunks;
  if (!seen_before) {
    redirect_unseen_total_.Increment();
    outcome.decision = Decision::kRedirect;
    return outcome;
  }
  // Eq. (5): redirect if the video's inter-arrival time, scaled by the
  // fill-to-redirect preference, exceeds the cache age. Only enforced once
  // the disk is full (warm-up admits all previously seen videos).
  if (disk_full && (now - last_time) * config_.alpha_f2r > CacheAge(now)) {
    redirect_age_total_.Increment();
    outcome.decision = Decision::kRedirect;
    return outcome;
  }
  // A range wider than the whole disk cannot be held.
  if (range.count() > config_.disk_capacity_chunks) {
    redirect_too_wide_total_.Increment();
    outcome.decision = Decision::kRedirect;
    return outcome;
  }

  // Serve: touch hits, fill misses (evicting the LRU chunks as needed).
  std::vector<uint32_t>& missing = missing_scratch_;
  missing.clear();
  for (uint32_t c = range.first; c <= range.last; ++c) {
    ChunkId chunk{request.video, c};
    if (double* at = disk_.GetAndTouch(chunk)) {
      *at = now;
      ++outcome.hit_chunks;
    } else {
      missing.push_back(c);
    }
  }
  uint64_t needed = disk_.size() + missing.size();
  uint64_t to_evict = needed > config_.disk_capacity_chunks
                          ? needed - config_.disk_capacity_chunks
                          : 0;
  for (uint64_t i = 0; i < to_evict; ++i) {
    disk_.PopOldest();
    ++outcome.evicted_chunks;
  }
  for (uint32_t c : missing) {
    disk_.InsertOrTouch(ChunkId{request.video, c}, now);
    ++outcome.filled_chunks;
  }

  outcome.decision = Decision::kServe;
  return outcome;
}

template class XlruCacheT<container::FlatContainers>;
template class XlruCacheT<container::ReferenceContainers>;

}  // namespace vcdn::core
