// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/core/xlru_cache.h"

#include <algorithm>
#include <vector>

namespace vcdn::core {

namespace {
// Tracker entries older than cache_age / min(1, alpha) can never pass Eq. (5)
// again; a small safety factor avoids dropping entries right at the border
// while the cache age is still growing.
constexpr double kTrackerRetentionSlack = 1.25;
}  // namespace

XlruCache::XlruCache(const CacheConfig& config) : CacheAlgorithm(config) {}

double XlruCache::CacheAge(double now) const {
  if (disk_.empty()) {
    return 0.0;
  }
  return now - disk_.Oldest().value;
}

void XlruCache::CleanupTracker(double now) {
  double age = CacheAge(now);
  if (age <= 0.0) {
    return;
  }
  double horizon = age / std::min(1.0, config_.alpha_f2r) * kTrackerRetentionSlack;
  while (!tracker_.empty() && now - tracker_.Oldest().value > horizon) {
    tracker_.PopOldest();
  }
}

uint64_t XlruCache::EvictDownTo(uint64_t max_chunks) {
  uint64_t evicted = 0;
  while (disk_.size() > max_chunks) {
    disk_.PopOldest();
    ++evicted;
  }
  return evicted;
}

void XlruCache::OnAttachMetrics(obs::MetricsRegistry& registry, const std::string& prefix) {
  redirect_unseen_total_ = registry.GetCounter(prefix + "redirect_unseen_total");
  redirect_age_total_ = registry.GetCounter(prefix + "redirect_age_total");
  redirect_too_wide_total_ = registry.GetCounter(prefix + "redirect_too_wide_total");
  tracker_videos_gauge_ = registry.GetGauge(prefix + "tracker_videos");
  cache_age_gauge_ = registry.GetGauge(prefix + "cache_age_seconds");
}

void XlruCache::OnOutcomeRecorded() {
  tracker_videos_gauge_.Set(static_cast<double>(tracker_.size()));
  cache_age_gauge_.Set(CacheAge(last_request_time_));
}

RequestOutcome XlruCache::HandleRequestImpl(const trace::Request& request) {
  const double now = request.arrival_time;
  last_request_time_ = now;
  RequestOutcome outcome = MakeOutcome(request);
  ChunkRange range = ToChunkRange(request, config_.chunk_bytes);

  // Popularity test (Fig. 1 lines 1-4): read the previous access time, then
  // record this access.
  const double* last = tracker_.Peek(request.video);
  bool seen_before = last != nullptr;
  double last_time = seen_before ? *last : 0.0;
  tracker_.InsertOrTouch(request.video, now);
  CleanupTracker(now);

  bool disk_full = disk_.size() >= config_.disk_capacity_chunks;
  if (!seen_before) {
    redirect_unseen_total_.Increment();
    outcome.decision = Decision::kRedirect;
    return outcome;
  }
  // Eq. (5): redirect if the video's inter-arrival time, scaled by the
  // fill-to-redirect preference, exceeds the cache age. Only enforced once
  // the disk is full (warm-up admits all previously seen videos).
  if (disk_full && (now - last_time) * config_.alpha_f2r > CacheAge(now)) {
    redirect_age_total_.Increment();
    outcome.decision = Decision::kRedirect;
    return outcome;
  }
  // A range wider than the whole disk cannot be held.
  if (range.count() > config_.disk_capacity_chunks) {
    redirect_too_wide_total_.Increment();
    outcome.decision = Decision::kRedirect;
    return outcome;
  }

  // Serve: touch hits, fill misses (evicting the LRU chunks as needed).
  std::vector<uint32_t> missing;
  for (uint32_t c = range.first; c <= range.last; ++c) {
    ChunkId chunk{request.video, c};
    if (disk_.Contains(chunk)) {
      ++outcome.hit_chunks;
      disk_.InsertOrTouch(chunk, now);
    } else {
      missing.push_back(c);
    }
  }
  uint64_t needed = disk_.size() + missing.size();
  uint64_t to_evict = needed > config_.disk_capacity_chunks
                          ? needed - config_.disk_capacity_chunks
                          : 0;
  for (uint64_t i = 0; i < to_evict; ++i) {
    disk_.PopOldest();
    ++outcome.evicted_chunks;
  }
  for (uint32_t c : missing) {
    disk_.InsertOrTouch(ChunkId{request.video, c}, now);
    ++outcome.filled_chunks;
  }

  outcome.decision = Decision::kServe;
  return outcome;
}

}  // namespace vcdn::core
