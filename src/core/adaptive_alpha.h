// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Dynamic alpha_F2R control loop (Sec. 10): "dynamic adjustment of
// alpha_F2R, although not recommended in a wide range due to the resultant
// cache pollution and cache churn, can be considered in a small range
// through a control loop for better responsiveness to dynamics."
//
// AdaptiveAlphaCache wraps any CacheAlgorithm and steers its alpha_F2R so
// the server's ingress-to-egress fraction tracks an operator-set budget
// (e.g. a disk-constrained server that can afford writes for at most 5% of
// its egress). Control is multiplicative-increase / multiplicative-decrease
// on a fixed cadence, clamped to a small [min, max] range as the paper
// advises.

#ifndef VCDN_SRC_CORE_ADAPTIVE_ALPHA_H_
#define VCDN_SRC_CORE_ADAPTIVE_ALPHA_H_

#include <memory>
#include <string>
#include <string_view>

#include "src/core/cache_algorithm.h"

namespace vcdn::core {

struct AdaptiveAlphaOptions {
  // Desired ingress as a fraction of egress (the "Ingress %" of Sec. 9).
  double target_ingress_fraction = 0.05;
  // Control range; the paper recommends keeping it small.
  double min_alpha = 1.0;
  double max_alpha = 4.0;
  // Control cadence and multiplicative step.
  double adjust_interval_seconds = 3600.0;
  double step = 1.15;
  // Tolerance band around the target within which alpha is left alone.
  double deadband = 0.2;  // +-20% of the target
};

class AdaptiveAlphaCache : public CacheAlgorithm {
 public:
  AdaptiveAlphaCache(std::unique_ptr<CacheAlgorithm> inner, const AdaptiveAlphaOptions& options);

  void Prepare(const trace::Trace& trace) override { inner_->Prepare(trace); }
  bool requires_full_trace() const override { return inner_->requires_full_trace(); }
  std::string_view name() const override { return name_; }
  uint64_t used_chunks() const override { return inner_->used_chunks(); }
  bool ContainsChunk(const ChunkId& chunk) const override { return inner_->ContainsChunk(chunk); }
  void SetAlphaF2r(double alpha_f2r) override;

  double current_alpha() const { return alpha_; }
  size_t adjustments() const { return adjustments_; }

 protected:
  RequestOutcome HandleRequestImpl(const trace::Request& request) override;
  // Forwards capacity changes to the wrapped cache. The base class already
  // updated this wrapper's config; Resize (not bare eviction) keeps the
  // inner cache's own capacity in sync.
  uint64_t EvictDownTo(uint64_t max_chunks) override {
    return max_chunks == 0 ? inner_->DropContents() : inner_->Resize(max_chunks);
  }
  // Also attaches the wrapped cache, so its own instrument set (under the
  // inner cache's name) is populated alongside the controller's.
  void OnAttachMetrics(obs::MetricsRegistry& registry, const std::string& prefix) override;
  void OnOutcomeRecorded() override;

 private:
  void MaybeAdjust(double now);

  std::unique_ptr<CacheAlgorithm> inner_;
  AdaptiveAlphaOptions options_;
  std::string name_;
  double alpha_;
  // Current measurement window.
  double window_start_ = -1.0;
  uint64_t window_served_bytes_ = 0;
  uint64_t window_filled_bytes_ = 0;
  uint64_t window_requests_ = 0;
  size_t adjustments_ = 0;

  // Observability (no-ops until AttachMetrics).
  obs::Gauge alpha_gauge_;
  obs::Counter adjustments_total_;
};

}  // namespace vcdn::core

#endif  // VCDN_SRC_CORE_ADAPTIVE_ALPHA_H_
