// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.

#include "src/core/cafe_cache.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace vcdn::core {

namespace {
constexpr double kInfinity = std::numeric_limits<double>::infinity();
// Floor on IAT values when dividing (an IAT of 0 would make a chunk
// infinitely valuable; in practice it means "requested within this tick").
constexpr double kMinIat = 1e-6;
}  // namespace

template <typename C>
CafeCacheT<C>::CafeCacheT(const CacheConfig& config, const CafeOptions& options)
    : CacheAlgorithm(config), options_(options) {
  VCDN_CHECK(options_.gamma > 0.0 && options_.gamma <= 1.0);
  VCDN_CHECK(options_.history_retention_factor > 0.0);
  const auto capacity = static_cast<size_t>(config.disk_capacity_chunks);
  cached_.Reserve(capacity);
  cached_stats_.Reserve(capacity);
  // History holds roughly as many tracked-but-uncached chunks as the disk
  // holds cached ones (the cleanup horizon scales with cache age).
  history_.Reserve(capacity);
  if (options_.proactive) {
    // The by-key candidate pool is only maintained when proactive filling can
    // read it; otherwise it stays empty and unreserved.
    history_by_key_.Reserve(capacity);
  }
  video_seen_.Reserve(capacity);
  video_chunks_.Reserve(capacity);
}

template <typename C>
double CafeCacheT<C>::IatOf(const ChunkStat& stat, double now) const {
  // Eq. (8).
  return options_.gamma * (now - stat.t_last) + (1.0 - options_.gamma) * stat.dt;
}

template <typename C>
double CafeCacheT<C>::VirtualKey(const ChunkStat& stat) const {
  // Theorem 1 with T0 = 0: key = T0 - IAT(T0) = gamma*t_last - (1-gamma)*dt.
  return options_.gamma * stat.t_last - (1.0 - options_.gamma) * stat.dt;
}

template <typename C>
void CafeCacheT<C>::UpdateStat(ChunkStat& stat, double now) const {
  stat.dt = options_.gamma * (now - stat.t_last) + (1.0 - options_.gamma) * stat.dt;
  stat.t_last = now;
}

template <typename C>
double CafeCacheT<C>::CacheAge(double now) const {
  if (cached_.empty()) {
    return 0.0;
  }
  const ChunkId& least_popular = cached_.Top().second;
  const ChunkStat* stat = cached_stats_.Peek(least_popular);
  VCDN_DCHECK(stat != nullptr);
  return std::max(0.0, IatOf(*stat, now));
}

template <typename C>
double CafeCacheT<C>::EstimateIat(const ChunkId& chunk, double now) const {
  if (const ChunkStat* cached_stat = cached_stats_.Peek(chunk)) {
    return std::max(kMinIat, IatOf(*cached_stat, now));
  }
  if (const ChunkStat* stat = history_.Peek(chunk)) {
    return std::max(kMinIat, IatOf(*stat, now));
  }
  return EstimateIatFromVideo(chunk.video, video_chunks_.HashOf(chunk.video), now);
}

template <typename C>
double CafeCacheT<C>::EstimateIatUncached(const ChunkId& chunk, uint32_t chunk_hash,
                                          uint32_t video_hash, double now) const {
  // cached_ and cached_stats_ always hold the same key set, so a chunk known
  // missing from cached_ cannot be in cached_stats_ -- skip that probe.
  VCDN_DCHECK(cached_stats_.Peek(chunk) == nullptr);
  if (const ChunkStat* stat = history_.Peek(chunk, chunk_hash)) {
    return std::max(kMinIat, IatOf(*stat, now));
  }
  return EstimateIatFromVideo(chunk.video, video_hash, now);
}

template <typename C>
double CafeCacheT<C>::EstimateIatFromVideo(VideoId video, uint32_t video_hash, double now) const {
  if (!options_.estimate_unseen_from_video) {
    return kInfinity;
  }
  // Sec. 6 optimization: a never-seen chunk of a partially cached video
  // inherits the largest recorded IAT among the video's cached chunks.
  // max() is order-independent, so the set's iteration order is immaterial.
  bool any = false;
  double worst = 0.0;
  video_chunks_.ForEach(video, video_hash, [&](uint32_t index) {
    const ChunkStat* stat = cached_stats_.Peek(ChunkId{video, index});
    VCDN_DCHECK(stat != nullptr);
    any = true;
    worst = std::max(worst, IatOf(*stat, now));
  });
  return any ? std::max(kMinIat, worst) : kInfinity;
}

template <typename C>
void CafeCacheT<C>::CleanupHistory(double now) {
  double age = CacheAge(now);
  if (age <= 0.0) {
    return;
  }
  double horizon = age * options_.history_retention_factor / std::min(1.0, config_.alpha_f2r);
  while (!history_.empty() && now - history_.Oldest().value.t_last > horizon) {
    if (options_.proactive) {
      history_by_key_.Erase(history_.Oldest().key);
    }
    history_.PopOldest();
  }
  while (!video_seen_.empty() && now - video_seen_.Oldest().value > horizon) {
    video_seen_.PopOldest();
  }
}

template <typename C>
void CafeCacheT<C>::HistoryPut(const ChunkId& chunk, const ChunkStat& stat, uint32_t chunk_hash) {
  history_.InsertOrTouch(chunk, stat, chunk_hash);
  if (options_.proactive) {
    history_by_key_.InsertOrUpdate(chunk, VirtualKey(stat), chunk_hash);
  }
}

template <typename C>
void CafeCacheT<C>::HistoryErase(const ChunkId& chunk, uint32_t chunk_hash) {
  history_.Erase(chunk, chunk_hash);
  if (options_.proactive) {
    history_by_key_.Erase(chunk, chunk_hash);
  }
}

template <typename C>
void CafeCacheT<C>::CacheInsert(const ChunkId& chunk, const ChunkStat& stat, uint32_t chunk_hash,
                                uint32_t video_hash) {
  cached_stats_.InsertOrTouch(chunk, stat, chunk_hash);
  cached_.InsertOrUpdate(chunk, VirtualKey(stat), chunk_hash);
  video_chunks_.Insert(chunk.video, chunk.index, video_hash);
}

template <typename C>
void CafeCacheT<C>::CacheEvict(const ChunkId& chunk) {
  // Victims are arbitrary chunks (not the request's), so their hashes are not
  // pre-computed; hash once here and reuse across the five probes.
  const uint32_t chunk_hash = cached_stats_.HashOf(chunk);
  const uint32_t video_hash = video_chunks_.HashOf(chunk.video);
  const ChunkStat* stat = cached_stats_.Peek(chunk, chunk_hash);
  VCDN_DCHECK(stat != nullptr);
  HistoryPut(chunk, *stat, chunk_hash);
  cached_stats_.Erase(chunk, chunk_hash);
  cached_.Erase(chunk, chunk_hash);
  video_chunks_.Erase(chunk.video, chunk.index, video_hash);
}

template <typename C>
uint64_t CafeCacheT<C>::EvictDownTo(uint64_t max_chunks) {
  uint64_t evicted = 0;
  while (cached_.size() > max_chunks) {
    ChunkId victim = cached_.Top().second;  // copy: eviction invalidates refs
    CacheEvict(victim);
    ++evicted;
  }
  return evicted;
}

template <typename C>
uint32_t CafeCacheT<C>::ProactiveFill(double now) {
  // Off-peak only: the smoothed request rate must sit well below the peak.
  if (rate_estimate_ <= 0.0 || peak_rate_ <= 0.0 ||
      rate_estimate_ > options_.proactive_rate_threshold * peak_rate_) {
    return 0;
  }
  const double window = CacheAge(now);
  const double min_cost = cost_.min_cost();
  uint32_t filled = 0;
  while (filled < options_.proactive_fills_per_request && !history_by_key_.empty()) {
    auto [key, chunk] = history_by_key_.Top();  // most popular uncached chunk
    const ChunkStat* stat = history_.Peek(chunk);
    VCDN_DCHECK(stat != nullptr);

    // Prefetch only when it pays under Cafe's own cost model (Eqs. 6-7):
    // the expected future redirects/fills avoided must exceed the fill cost
    // plus, if the disk is full, the victim's own expected future value.
    double gain = window / std::max(kMinIat, IatOf(*stat, now)) * min_cost;
    bool disk_full = cached_.size() >= config_.disk_capacity_chunks;
    if (disk_full) {
      if (cached_.empty() || key <= cached_.Top().first) {
        break;
      }
      const ChunkStat* victim_stat = cached_stats_.Peek(cached_.Top().second);
      VCDN_DCHECK(victim_stat != nullptr);
      gain -= window / std::max(kMinIat, IatOf(*victim_stat, now)) * min_cost;
    }
    if (gain <= cost_.fill_cost() * options_.proactive_cost_discount) {
      // Candidates are popularity-ordered; nothing further down can pay.
      break;
    }

    ChunkStat moved = *stat;
    const uint32_t chunk_hash = history_.HashOf(chunk);
    HistoryErase(chunk, chunk_hash);
    if (disk_full) {
      ChunkId victim = cached_.Top().second;  // copy: eviction invalidates refs
      CacheEvict(victim);
    }
    CacheInsert(chunk, moved, chunk_hash, video_chunks_.HashOf(chunk.video));
    ++filled;
  }
  return filled;
}

template <typename C>
void CafeCacheT<C>::OnAttachMetrics(obs::MetricsRegistry& registry, const std::string& prefix) {
  admit_serve_total_ = registry.GetCounter(prefix + "admit_serve_total");
  admit_redirect_cost_total_ = registry.GetCounter(prefix + "admit_redirect_cost_total");
  admit_redirect_unseen_total_ = registry.GetCounter(prefix + "admit_redirect_unseen_total");
  admit_redirect_too_wide_total_ = registry.GetCounter(prefix + "admit_redirect_too_wide_total");
  proactive_fill_rounds_total_ = registry.GetCounter(prefix + "proactive_fill_rounds_total");
  history_chunks_gauge_ = registry.GetGauge(prefix + "history_chunks");
  tracked_videos_gauge_ = registry.GetGauge(prefix + "tracked_videos");
  cache_age_gauge_ = registry.GetGauge(prefix + "cache_age_seconds");
  request_rate_gauge_ = registry.GetGauge(prefix + "request_rate_per_sec");
}

template <typename C>
void CafeCacheT<C>::OnOutcomeRecorded() {
  history_chunks_gauge_.Set(static_cast<double>(history_.size()));
  tracked_videos_gauge_.Set(static_cast<double>(video_seen_.size()));
  cache_age_gauge_.Set(CacheAge(last_arrival_));
  request_rate_gauge_.Set(rate_estimate_);
}

template <typename C>
void CafeCacheT<C>::ComputeHashes(const trace::Request& request, RequestHashes& out) const {
  // video_seen_ and video_chunks_ share their hash (same Key/Hash pair), as
  // do cached_, cached_stats_, history_ and history_by_key_ (ChunkIdHash).
  out.video_hash = video_seen_.HashOf(request.video);
  ChunkRange range = ToChunkRange(request, config_.chunk_bytes);
  out.chunk_hashes.clear();
  out.chunk_hashes.reserve(range.count());
  for (uint32_t c = range.first; c <= range.last; ++c) {
    out.chunk_hashes.push_back(cached_.HashOf(ChunkId{request.video, c}));
  }
}

template <typename C>
void CafeCacheT<C>::PrefetchFor(const RequestHashes& hashes) const {
  for (uint32_t h : hashes.chunk_hashes) {
    cached_.PrefetchEntry(h);
    cached_stats_.PrefetchSlot(h);
    history_.PrefetchSlot(h);
  }
  video_seen_.PrefetchSlot(hashes.video_hash);
  video_chunks_.PrefetchVideo(hashes.video_hash);
  // Per-request fixtures: victim selection and CacheAge start at the heap
  // top; CleanupHistory polls the history/video LRU tails every request.
  cached_.PrefetchTop();
  history_.PrefetchOldest();
  video_seen_.PrefetchOldest();
}

template <typename C>
RequestOutcome CafeCacheT<C>::HandleRequestImpl(const trace::Request& request) {
  ComputeHashes(request, own_hashes_);
  return HandleOne(request, own_hashes_);
}

template <typename C>
void CafeCacheT<C>::HandleRequestBatchImpl(const trace::Request* requests, size_t count,
                                           RequestOutcome* outcomes) {
  // Software pipeline: hash and prefetch request i + kPrefetchDistance, then
  // handle request i, so the probe lines for upcoming requests stream in
  // while the current request runs the cost model. Hashes are pure functions
  // of the chunk ids and prefetches are pure hints, so interleaving them
  // ahead of mutations cannot change any outcome; results are bit-identical
  // to the base class's sequential loop at every batch size.
  constexpr size_t kRing = kPrefetchDistance + 1;
  const size_t lead = std::min(kPrefetchDistance, count);
  for (size_t i = 0; i < lead; ++i) {
    ComputeHashes(requests[i], batch_hashes_[i % kRing]);
    PrefetchFor(batch_hashes_[i % kRing]);
  }
  for (size_t i = 0; i < count; ++i) {
    const size_t ahead = i + kPrefetchDistance;
    if (ahead < count) {
      ComputeHashes(requests[ahead], batch_hashes_[ahead % kRing]);
      PrefetchFor(batch_hashes_[ahead % kRing]);
    }
    outcomes[i] = HandleOne(requests[i], batch_hashes_[i % kRing]);
  }
}

template <typename C>
RequestOutcome CafeCacheT<C>::HandleOne(const trace::Request& request,
                                        const RequestHashes& hashes) {
  const double now = request.arrival_time;
  if (first_request_time_ < 0.0) {
    first_request_time_ = now;
  }
  RequestOutcome outcome = MakeOutcome(request);
  ChunkRange range = ToChunkRange(request, config_.chunk_bytes);
  const size_t chunk_count = range.count();
  VCDN_DCHECK(hashes.chunk_hashes.size() == chunk_count);

  // Classify the requested chunks (S) into present and missing (S'), with
  // the membership probes interleaved so their index misses overlap.
  std::vector<ChunkId>& all_chunks = all_chunks_scratch_;
  std::vector<ChunkId>& missing = missing_scratch_;
  std::vector<uint32_t>& missing_hashes = missing_hash_scratch_;
  all_chunks.clear();
  missing.clear();
  missing_hashes.clear();
  all_chunks.reserve(chunk_count);
  for (uint32_t c = range.first; c <= range.last; ++c) {
    all_chunks.push_back(ChunkId{request.video, c});
  }
  contains_scratch_.resize(chunk_count);
  cached_.ContainsMany(all_chunks.data(), hashes.chunk_hashes.data(), chunk_count,
                       contains_scratch_.data());
  for (size_t i = 0; i < chunk_count; ++i) {
    if (!contains_scratch_[i]) {
      missing.push_back(all_chunks[i]);
      missing_hashes.push_back(hashes.chunk_hashes[i]);
    }
  }
  outcome.hit_chunks = static_cast<uint32_t>(chunk_count - missing.size());

  // First-ever request for this video: no popularity signal at all; redirect
  // (the same rule as xLRU's "t == NULL" -- Sec. 9.2 confirms Cafe
  // intentionally never admits a never-seen file). One InsertOrTouch both
  // reads the previous presence and records this request's touch.
  const bool video_seen = !video_seen_.InsertOrTouch(request.video, now, hashes.video_hash);

  bool admit = false;
  std::vector<std::pair<ChunkId, double>>& victims = victims_scratch_;  // (chunk, IAT at now)
  victims.clear();
  if (video_seen && chunk_count <= config_.disk_capacity_chunks) {
    // Select eviction victims S'': the least popular cached chunks, skipping
    // requested ones. Only as many as the fill would overflow the disk.
    uint64_t needed = cached_.size() + missing.size();
    uint64_t evictions = needed > config_.disk_capacity_chunks
                             ? needed - config_.disk_capacity_chunks
                             : 0;
    if (evictions > 0) {
      cached_.ScanInOrder([&](const auto& item) {
        const ChunkId& chunk = item.second;
        if (victims.size() >= evictions) {
          return false;
        }
        if (chunk.video == request.video && chunk.index >= range.first &&
            chunk.index <= range.last) {
          return true;  // never evict a chunk this request needs
        }
        const ChunkStat* stat = cached_stats_.Peek(chunk);
        VCDN_DCHECK(stat != nullptr);
        victims.emplace_back(chunk, std::max(kMinIat, IatOf(*stat, now)));
        return victims.size() < evictions;
      });
      VCDN_CHECK(victims.size() == evictions);
    }

    // Lookahead window T: the cache age; while the disk is still filling the
    // natural churn horizon is the cache's lifetime so far.
    double window = CacheAge(now);
    if (cached_.size() < config_.disk_capacity_chunks) {
      window = std::max(window, now - first_request_time_);
    }

    // Eqs. (6) and (7).
    double min_cost = cost_.min_cost();
    double cost_serve = static_cast<double>(missing.size()) * cost_.fill_cost();
    for (const auto& [chunk, iat] : victims) {
      cost_serve += window / iat * min_cost;
    }
    double cost_redirect = static_cast<double>(all_chunks.size()) * cost_.redirect_cost();
    for (size_t i = 0; i < missing.size(); ++i) {
      double iat = EstimateIatUncached(missing[i], missing_hashes[i], hashes.video_hash, now);
      if (std::isfinite(iat)) {
        cost_redirect += window / iat * min_cost;
      }
    }
    admit = cost_serve <= cost_redirect;
  }

  if (admit) {
    admit_serve_total_.Increment();
    // Evict S'' (stats move to history), fill S', touch all of S.
    for (const auto& [chunk, iat] : victims) {
      (void)iat;
      CacheEvict(chunk);
      ++outcome.evicted_chunks;
    }
    for (size_t i = 0; i < chunk_count; ++i) {
      const ChunkId& chunk = all_chunks[i];
      const uint32_t chunk_hash = hashes.chunk_hashes[i];
      if (ChunkStat* stat = cached_stats_.PeekMut(chunk, chunk_hash)) {
        // Hit: EWMA update and re-key.
        UpdateStat(*stat, now);
        cached_.InsertOrUpdate(chunk, VirtualKey(*stat), chunk_hash);
        continue;
      }
      // Fill: seed the stat from history, or initialize a fresh one. The
      // chunk is uncached and (in the else branch) untracked, so the IAT
      // estimate goes straight to the per-video fallback.
      ChunkStat stat;
      if (const ChunkStat* h = history_.Peek(chunk, chunk_hash)) {
        stat = *h;
        HistoryErase(chunk, chunk_hash);
        UpdateStat(stat, now);
      } else {
        double estimate = EstimateIatFromVideo(request.video, hashes.video_hash, now);
        stat.dt = std::isfinite(estimate) ? estimate : std::max(CacheAge(now), kMinIat);
        stat.t_last = now;
      }
      CacheInsert(chunk, stat, chunk_hash, hashes.video_hash);
      ++outcome.filled_chunks;
    }
    outcome.decision = Decision::kServe;
  } else {
    if (!video_seen) {
      admit_redirect_unseen_total_.Increment();
    } else if (chunk_count > config_.disk_capacity_chunks) {
      admit_redirect_too_wide_total_.Increment();
    } else {
      admit_redirect_cost_total_.Increment();
    }
    // Redirect. The request still signals popularity: update every requested
    // chunk's stat (cached chunks get re-keyed, uncached ones tracked in
    // history).
    for (size_t i = 0; i < chunk_count; ++i) {
      const ChunkId& chunk = all_chunks[i];
      const uint32_t chunk_hash = hashes.chunk_hashes[i];
      if (ChunkStat* cached_stat = cached_stats_.PeekMut(chunk, chunk_hash)) {
        UpdateStat(*cached_stat, now);
        cached_.InsertOrUpdate(chunk, VirtualKey(*cached_stat), chunk_hash);
        continue;
      }
      ChunkStat stat;
      if (const ChunkStat* h = history_.Peek(chunk, chunk_hash)) {
        stat = *h;
        UpdateStat(stat, now);
      } else {
        double estimate = EstimateIatFromVideo(request.video, hashes.video_hash, now);
        stat.dt = std::isfinite(estimate) ? estimate : std::max(CacheAge(now), kMinIat);
        stat.t_last = now;
      }
      HistoryPut(chunk, stat, chunk_hash);
    }
    outcome.decision = Decision::kRedirect;
  }

  // Request-rate tracking and, when enabled, off-peak prefetching (Sec. 10).
  if (last_arrival_ >= 0.0 && now > last_arrival_) {
    double instantaneous = 1.0 / (now - last_arrival_);
    double smoothing = options_.proactive_rate_smoothing;
    rate_estimate_ = rate_estimate_ <= 0.0
                         ? instantaneous
                         : smoothing * instantaneous + (1.0 - smoothing) * rate_estimate_;
    peak_rate_ = std::max(peak_rate_ * (1.0 - smoothing * 0.01), rate_estimate_);
  }
  last_arrival_ = now;
  if (options_.proactive) {
    outcome.proactive_filled_chunks = ProactiveFill(now);
    if (outcome.proactive_filled_chunks > 0) {
      proactive_fill_rounds_total_.Increment();
    }
  }

  CleanupHistory(now);
  return outcome;
}

template class CafeCacheT<container::FlatContainers>;
template class CafeCacheT<container::ReferenceContainers>;

}  // namespace vcdn::core
