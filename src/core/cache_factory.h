// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Factory for the cache algorithms evaluated in the paper, used by the
// simulator, the benches and the examples.

#ifndef VCDN_SRC_CORE_CACHE_FACTORY_H_
#define VCDN_SRC_CORE_CACHE_FACTORY_H_

#include <memory>
#include <string_view>

#include "src/core/cache_algorithm.h"

namespace vcdn::core {

enum class CacheKind {
  kXlru,     // Sec. 5
  kCafe,     // Sec. 6
  kPsychic,  // Sec. 8 (offline)
  kFillLru,  // classic always-fill LRU baseline
  kFillLfu,  // classic always-fill LFU baseline (aged frequencies)
  kBelady,   // offline Belady MIN replacement baseline
  // Reference-container instantiations (node-based LruMap/OrderedKeySet).
  // Identical replay behavior to kXlru/kCafe; kept for A/B benchmarking and
  // differential verification of the flat hot-path containers.
  kXlruRef,
  kCafeRef,
};

// Human-readable name matching CacheAlgorithm::name().
std::string_view CacheKindName(CacheKind kind);

std::unique_ptr<CacheAlgorithm> MakeCache(CacheKind kind, const CacheConfig& config);

}  // namespace vcdn::core

#endif  // VCDN_SRC_CORE_CACHE_FACTORY_H_
