// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// hierarchy_sim: two-tier CDN simulation (Sec. 10 future work, Sec. 2's
// cache-hierarchy redirect target).
//
// Six regional edge servers redirect their misses to one shared parent site
// with a deeper cache. The edges run ingress-constrained (alpha = 2, the
// paper's default for constrained servers); the parent, being closer to the
// fill origin, runs with cheap ingress (alpha = 0.75). The tool reports how
// much user demand each tier absorbs and what reaches the origin.
//
// Usage: hierarchy_sim [--edge-cache xlru|cafe] [--days N] [--scale X]
//                      [--seed S] [--threads N]

#include <cstdio>
#include <string>

#include "src/sim/hierarchy.h"
#include "src/trace/server_profile.h"
#include "src/trace/workload_generator.h"
#include "src/util/rng.h"
#include "src/util/str_util.h"

int main(int argc, char** argv) {
  using namespace vcdn;
  std::string edge_cache = "cafe";
  double days = 10.0;
  double scale = 0.08;
  uint64_t seed = 1;
  uint64_t threads = 0;  // hardware concurrency
  for (int i = 1; i + 1 < argc; i += 2) {
    std::string flag = argv[i];
    std::string value = argv[i + 1];
    if (flag == "--edge-cache") {
      edge_cache = value;
    } else if (flag == "--days") {
      util::ParseDouble(value, &days);
    } else if (flag == "--scale") {
      util::ParseDouble(value, &scale);
    } else if (flag == "--seed") {
      util::ParseUint64(value, &seed);
    } else if (flag == "--threads") {
      util::ParseUint64(value, &threads);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return 1;
    }
  }

  // One trace per edge region, generated in parallel; each region draws from
  // its own SplitSeed-decorrelated RNG stream under the single --seed knob.
  std::vector<trace::WorkloadConfig> workload_configs;
  for (const trace::ServerProfile& profile : trace::PaperServerProfiles(scale)) {
    trace::WorkloadConfig config;
    config.profile = profile;
    config.duration_seconds = days * 86400.0;
    config.seed = util::SplitSeed(seed, workload_configs.size());
    workload_configs.push_back(std::move(config));
  }
  trace::ParallelGenerateOptions generate_options;
  generate_options.threads = static_cast<size_t>(threads);
  std::vector<trace::Trace> edge_traces;
  for (trace::GeneratedWorkload& workload :
       trace::GenerateWorkloads(workload_configs, generate_options)) {
    edge_traces.push_back(std::move(workload.trace));
  }

  sim::HierarchyConfig config;
  config.threads = static_cast<size_t>(threads);
  config.edge_kind =
      edge_cache == "xlru" ? core::CacheKind::kXlru : core::CacheKind::kCafe;
  config.edge_config.chunk_bytes = 2ull << 20;
  config.edge_config.disk_capacity_chunks = 3000;
  config.edge_config.alpha_f2r = 2.0;  // constrained edges
  config.parent_kind = core::CacheKind::kCafe;
  config.parent_config.chunk_bytes = 2ull << 20;
  config.parent_config.disk_capacity_chunks = 12000;  // deeper parent cache
  config.parent_config.alpha_f2r = 0.75;              // cheap ingress near origin

  sim::HierarchyResult result = sim::RunHierarchy(edge_traces, config);

  std::printf("Two-tier CDN: 6 edges (%s, alpha=2, %llu chunks) -> parent (%s, alpha=0.75, %llu "
              "chunks)\n\n",
              edge_cache.c_str(),
              static_cast<unsigned long long>(config.edge_config.disk_capacity_chunks),
              result.parent.cache_name.c_str(),
              static_cast<unsigned long long>(config.parent_config.disk_capacity_chunks));

  util::TextTable edges({"edge", "efficiency", "ingress %", "redirect %"});
  const char* names[] = {"Africa", "Asia", "Australia", "Europe", "NorthAmerica", "SouthAmerica"};
  for (size_t i = 0; i < result.edges.size(); ++i) {
    const auto& e = result.edges[i];
    edges.AddRow({names[i], util::FormatPercent(e.efficiency),
                  util::FormatPercent(e.ingress_fraction),
                  util::FormatPercent(e.redirect_fraction)});
  }
  std::printf("%s\n", edges.ToString().c_str());

  std::printf("Parent tier: efficiency %s, ingress %s, redirect-to-origin %s\n\n",
              util::FormatPercent(result.parent.efficiency).c_str(),
              util::FormatPercent(result.parent.ingress_fraction).c_str(),
              util::FormatPercent(result.parent.redirect_fraction).c_str());

  std::printf("CDN-wide (steady state):\n");
  std::printf("  user demand:            %s\n", util::HumanBytes(result.requested_bytes).c_str());
  std::printf("  served at the edge:     %s (%s)\n",
              util::HumanBytes(result.edge_served_bytes).c_str(),
              util::FormatPercent(result.edge_hit_fraction).c_str());
  std::printf("  absorbed by the parent: %s\n",
              util::HumanBytes(result.parent_served_bytes).c_str());
  std::printf("  served by the CDN:      %s\n",
              util::FormatPercent(result.cdn_hit_fraction).c_str());
  std::printf("  reached the origin:     %s\n", util::HumanBytes(result.origin_bytes).c_str());
  std::printf("  edge ingress:           %s\n", util::HumanBytes(result.edge_filled_bytes).c_str());
  std::printf("  parent ingress:         %s\n",
              util::HumanBytes(result.parent_filled_bytes).c_str());
  return 0;
}
