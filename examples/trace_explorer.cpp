// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// trace_explorer: generate, inspect and export synthetic CDN traces.
//
// Prints the workload statistics the paper's arguments rest on -- the Zipf
// popularity curve, the diurnal demand cycle, intra-file (chunk) skew and
// catalog churn -- and optionally writes the trace as CSV/binary for replay
// elsewhere (including through real tooling; see src/trace/trace_io.h for
// the formats).
//
// Usage: trace_explorer [--server NAME] [--days N] [--seed N] [--scale X]
//                       [--out-csv FILE] [--out-bin FILE]

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/chunk.h"
#include "src/trace/analysis.h"
#include "src/trace/server_profile.h"
#include "src/trace/trace_io.h"
#include "src/trace/workload_generator.h"
#include "src/util/str_util.h"

namespace {
using namespace vcdn;

void PrintPopularityCurve(const trace::Trace& trace) {
  std::vector<uint64_t> counts = trace::PopularityCurve(trace);
  std::printf("\nPopularity (hits by video rank; expect a Zipf-like head and long tail):\n");
  uint64_t total = 0;
  for (uint64_t c : counts) {
    total += c;
  }
  uint64_t cumulative = 0;
  size_t next_rank = 1;
  for (size_t i = 0; i < counts.size(); ++i) {
    cumulative += counts[i];
    if (i + 1 == next_rank) {
      std::printf("  top %6zu videos (%5.1f%%) -> %5.1f%% of requests\n", i + 1,
                  100.0 * static_cast<double>(i + 1) / static_cast<double>(counts.size()),
                  100.0 * static_cast<double>(cumulative) / static_cast<double>(total));
      next_rank *= 10;
    }
  }
}

void PrintDiurnalCycle(const trace::Trace& trace) {
  std::vector<uint64_t> per_hour = trace::DemandByHourOfDay(trace);
  uint64_t peak = *std::max_element(per_hour.begin(), per_hour.end());
  std::printf("\nDemand by hour of day (UTC), peak/trough = %.2f:\n",
              trace::DiurnalPeakToTrough(trace));
  for (int h = 0; h < 24; ++h) {
    int bar = peak > 0 ? static_cast<int>(per_hour[static_cast<size_t>(h)] * 50 / peak) : 0;
    std::printf("  %02d:00 %s\n", h, std::string(static_cast<size_t>(bar), '#').c_str());
  }
}

void PrintChunkSkew(const trace::Trace& trace) {
  std::vector<uint64_t> by_position =
      trace::AccessesByChunkPosition(trace, core::kDefaultChunkBytes, 20);
  std::printf("\nIntra-file skew (accesses by chunk position; first chunks hottest):\n");
  uint64_t peak = by_position[0] > 0 ? by_position[0] : 1;
  for (int c = 0; c < 10; ++c) {
    int bar = static_cast<int>(by_position[static_cast<size_t>(c)] * 50 / peak);
    std::printf("  chunk %2d %s\n", c, std::string(static_cast<size_t>(bar), '#').c_str());
  }
}

void PrintWorkingSet(const trace::Trace& trace) {
  std::vector<double> fractions = {0.25, 0.5, 0.75, 1.0};
  std::vector<uint64_t> growth =
      trace::WorkingSetGrowth(trace, core::kDefaultChunkBytes, fractions);
  std::printf("\nWorking set growth (distinct requested chunks):\n");
  for (size_t i = 0; i < fractions.size(); ++i) {
    std::printf("  %3.0f%% of trace -> %llu chunks (%s)\n", fractions[i] * 100.0,
                static_cast<unsigned long long>(growth[i]),
                util::HumanBytes(growth[i] * core::kDefaultChunkBytes).c_str());
  }
  std::printf("\nDisk skyline (footnote 1's diminishing returns):\n");
  for (double share : {0.5, 0.8, 0.9, 0.99}) {
    uint64_t bytes = trace::BytesForAccessShare(trace, core::kDefaultChunkBytes, share);
    std::printf("  capture %2.0f%% of chunk accesses -> needs %s of perfectly chosen disk\n",
                share * 100.0, util::HumanBytes(bytes).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string server = "Europe";
  double days = 7.0;
  double scale = 0.1;
  uint64_t seed = 1;
  std::string out_csv;
  std::string out_bin;
  for (int i = 1; i + 1 < argc + 1; ++i) {
    std::string flag = i < argc ? argv[i] : "";
    if (flag.empty()) {
      break;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", flag.c_str());
      return 1;
    }
    std::string value = argv[++i];
    if (flag == "--server") {
      server = value;
    } else if (flag == "--days") {
      util::ParseDouble(value, &days);
    } else if (flag == "--scale") {
      util::ParseDouble(value, &scale);
    } else if (flag == "--seed") {
      util::ParseUint64(value, &seed);
    } else if (flag == "--out-csv") {
      out_csv = value;
    } else if (flag == "--out-bin") {
      out_bin = value;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return 1;
    }
  }

  trace::ServerProfile profile;
  bool found = false;
  for (const auto& p : trace::PaperServerProfiles(scale)) {
    if (p.name == server) {
      profile = p;
      found = true;
      break;
    }
  }
  if (!found) {
    std::fprintf(stderr, "unknown server %s\n", server.c_str());
    return 1;
  }

  trace::WorkloadConfig config;
  config.profile = profile;
  config.duration_seconds = days * 86400.0;
  config.seed = seed;
  trace::GeneratedWorkload workload = trace::WorkloadGenerator(config).Generate();
  const trace::Trace& trace = workload.trace;

  std::printf("Server %s, %.1f days, seed %llu\n", server.c_str(), days,
              static_cast<unsigned long long>(seed));
  std::printf("  requests:        %zu\n", trace.requests.size());
  std::printf("  distinct videos: %zu (catalog %zu)\n", trace.DistinctVideos(),
              workload.catalog.videos.size());
  std::printf("  requested bytes: %s\n", util::HumanBytes(trace.TotalRequestedBytes()).c_str());
  std::printf("  catalog bytes:   %s\n", util::HumanBytes(workload.catalog.TotalBytes()).c_str());

  PrintPopularityCurve(trace);
  PrintDiurnalCycle(trace);
  PrintChunkSkew(trace);
  PrintWorkingSet(trace);

  if (!out_csv.empty()) {
    util::Status status = trace::WriteCsvFile(trace, out_csv);
    std::printf("\nCSV export to %s: %s\n", out_csv.c_str(), status.ToString().c_str());
  }
  if (!out_bin.empty()) {
    util::Status status = trace::WriteBinaryFile(trace, out_bin);
    std::printf("Binary export to %s: %s\n", out_bin.c_str(), status.ToString().c_str());
  }
  return 0;
}
