// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// Quickstart: the smallest end-to-end use of libvcdn.
//
//   1. generate a synthetic one-week trace for a European edge server,
//   2. run the paper's three caches (xLRU, Cafe, Psychic) on a small disk
//      with the ingress-constrained preference alpha_F2R = 2,
//   3. print the steady-state efficiency / ingress / redirect numbers.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "src/core/cache_factory.h"
#include "src/sim/replay.h"
#include "src/trace/server_profile.h"
#include "src/trace/workload_generator.h"
#include "src/util/str_util.h"

int main() {
  using namespace vcdn;

  // 1. A scaled-down European server: ~10k requests over a week.
  trace::WorkloadConfig workload;
  workload.profile = trace::EuropeProfile(/*scale=*/0.1);
  workload.duration_seconds = 7.0 * 86400.0;
  workload.seed = 42;
  trace::Trace trace = trace::WorkloadGenerator(workload).Generate().trace;
  std::printf("Generated %zu requests for %zu distinct videos (%s)\n\n", trace.requests.size(),
              trace.DistinctVideos(), util::HumanBytes(trace.TotalRequestedBytes()).c_str());

  // 2. An ingress-constrained edge cache: 8 GiB disk in 2 MB chunks.
  core::CacheConfig config;
  config.chunk_bytes = 2ull << 20;
  config.disk_capacity_chunks = 4096;
  config.alpha_f2r = 2.0;  // cache-filled bytes cost twice redirected bytes

  // 3. Replay and compare.
  util::TextTable table({"cache", "efficiency", "ingress %", "redirect %"});
  for (auto kind : {core::CacheKind::kXlru, core::CacheKind::kCafe, core::CacheKind::kPsychic}) {
    auto cache = core::MakeCache(kind, config);
    sim::ReplayResult result = sim::Replay(*cache, trace);
    table.AddRow({result.cache_name, util::FormatPercent(result.efficiency),
                  util::FormatPercent(result.ingress_fraction),
                  util::FormatPercent(result.redirect_fraction)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\n(efficiency = Eq. (2) of the paper: 1 - fill%%*C_F - redirect%%*C_R)\n");
  return 0;
}
