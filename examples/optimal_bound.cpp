// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// optimal_bound: how good could ANY caching algorithm be on this workload?
//
// Generates a short synthetic trace, downsamples it per the paper's Sec. 9.1
// recipe, and computes three reference points with the offline machinery:
//
//   * the LP-relaxed Optimal bound (Sec. 7) -- a certified efficiency ceiling;
//   * the exact IP optimum via branch & bound (Sec. 10 future work);
//   * Psychic Cache (Sec. 8) -- the paper's fast clairvoyant heuristic;
//
// and contrasts them with the online algorithms, answering the paper's
// motivating question: "how much of the inefficiency to blame on the caching
// algorithms and how much on the nature of the data".
//
// Usage: optimal_bound [--alpha X] [--files N] [--requests N] [--seed N]

#include <cstdio>
#include <string>
#include <unordered_set>

#include "src/core/cache_factory.h"
#include "src/core/optimal_cache.h"
#include "src/sim/replay.h"
#include "src/trace/downsample.h"
#include "src/trace/server_profile.h"
#include "src/trace/workload_generator.h"
#include "src/util/str_util.h"

int main(int argc, char** argv) {
  using namespace vcdn;
  double alpha = 2.0;
  uint64_t num_files = 25;
  uint64_t max_requests = 120;
  uint64_t seed = 1;
  for (int i = 1; i + 1 < argc; i += 2) {
    std::string flag = argv[i];
    std::string value = argv[i + 1];
    if (flag == "--alpha") {
      util::ParseDouble(value, &alpha);
    } else if (flag == "--files") {
      util::ParseUint64(value, &num_files);
    } else if (flag == "--requests") {
      util::ParseUint64(value, &max_requests);
    } else if (flag == "--seed") {
      util::ParseUint64(value, &seed);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return 1;
    }
  }

  // A two-day trace, downsampled like the paper's Optimal experiment.
  trace::WorkloadConfig workload;
  workload.profile = trace::EuropeProfile(0.15);
  workload.duration_seconds = 2.0 * 86400.0;
  workload.seed = seed;
  trace::Trace full = trace::WorkloadGenerator(workload).Generate().trace;

  trace::DownsampleOptions ds;
  ds.num_files = static_cast<size_t>(num_files);
  ds.file_cap_bytes = 20ull << 20;
  ds.max_requests = static_cast<size_t>(max_requests);
  trace::DownsampledTrace down = trace::DownsampleForOptimal(full, ds);

  core::CacheConfig config;
  config.chunk_bytes = 2ull << 20;
  config.alpha_f2r = alpha;
  {
    std::unordered_set<uint64_t> chunks;
    for (const auto& r : down.trace.requests) {
      core::ChunkRange range = core::ToChunkRange(r, config.chunk_bytes);
      for (uint32_t c = range.first; c <= range.last; ++c) {
        chunks.insert(r.video * 4096 + c);
      }
    }
    config.disk_capacity_chunks = std::max<uint64_t>(16, chunks.size() / 10);
    std::printf("Instance: %zu requests, %zu distinct chunks, disk %llu chunks, alpha %.2f\n\n",
                down.trace.requests.size(), chunks.size(),
                static_cast<unsigned long long>(config.disk_capacity_chunks), alpha);
  }

  core::OptimalCacheSolver solver(config, core::OptimalOptions{});
  core::OptimalBound bound = solver.SolveBound(down.trace);
  std::printf(
      "LP-relaxed Optimal bound:   efficiency <= %s  (cost %.1f, %d rows, %lld iters, "
      "%lld refactorizations)\n",
      util::FormatPercent(bound.efficiency_bound).c_str(), bound.total_cost, bound.num_rows,
      static_cast<long long>(bound.stats.iterations),
      static_cast<long long>(bound.stats.refactorizations));

  core::OptimalExactResult exact = solver.SolveExact(down.trace, /*max_nodes=*/50000);
  if (exact.status == lp::SolveStatus::kOptimal) {
    std::printf(
        "Exact IP optimum (B&B):     efficiency  = %s  (%lld nodes, %lld simplex iters, "
        "gap %.2f)\n",
        util::FormatPercent(exact.efficiency).c_str(),
        static_cast<long long>(exact.nodes_explored),
        static_cast<long long>(exact.stats.iterations), exact.total_cost - bound.total_cost);
  } else {
    std::printf("Exact IP optimum (B&B):     %s within node budget\n",
                lp::SolveStatusName(exact.status));
  }

  sim::ReplayOptions options;
  options.measurement_start_fraction = 0.0;  // offline-style: no warmup cut
  util::TextTable table({"algorithm", "chunk efficiency", "vs LP bound"});
  for (auto kind : {core::CacheKind::kPsychic, core::CacheKind::kCafe, core::CacheKind::kXlru,
                    core::CacheKind::kFillLru}) {
    auto cache = core::MakeCache(kind, config);
    sim::ReplayResult result = sim::Replay(*cache, down.trace, options);
    double efficiency = result.totals.ChunkEfficiency(cache->cost_model());
    table.AddRow({result.cache_name, util::FormatPercent(efficiency),
                  util::FormatPercent(efficiency - bound.efficiency_bound)});
  }
  std::printf("\n%s", table.ToString().c_str());
  std::printf(
      "\nEverything below the LP bound line is, per the paper, inefficiency of the\n"
      "*algorithm*; the rest of the distance to 100%% is the nature of the data.\n");
  return 0;
}
