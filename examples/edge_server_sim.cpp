// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// edge_server_sim: a configurable single-server what-if tool.
//
// Models the operational question an SRE of the paper's CDN would ask: given
// this server's request profile, how do disk size and the fill-to-redirect
// preference alpha_F2R trade ingress against redirects, and which algorithm
// should the server run?
//
// Usage:
//   edge_server_sim [--server NAME] [--alpha X] [--disk-gib N] [--days N]
//                   [--cache xlru|cafe|psychic|filllru|belady] [--seed N]
//                   [--scale X] [--csv FILE]
//
// With no --cache, all three paper algorithms are compared. --csv dumps the
// hourly time series for plotting.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "src/core/cache_factory.h"
#include "src/sim/replay.h"
#include "src/trace/server_profile.h"
#include "src/trace/workload_generator.h"
#include "src/util/str_util.h"

namespace {

using namespace vcdn;

struct Args {
  std::string server = "Europe";
  double alpha = 2.0;
  double disk_gib = 64.0;
  double days = 14.0;
  double scale = 0.1;
  uint64_t seed = 1;
  std::string cache;  // empty = compare all three
  std::string csv;
};

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    const char* value = nullptr;
    if (flag == "--server") {
      if ((value = next()) == nullptr) return false;
      args->server = value;
    } else if (flag == "--alpha") {
      if ((value = next()) == nullptr) return false;
      if (!util::ParseDouble(value, &args->alpha)) return false;
    } else if (flag == "--disk-gib") {
      if ((value = next()) == nullptr) return false;
      if (!util::ParseDouble(value, &args->disk_gib)) return false;
    } else if (flag == "--days") {
      if ((value = next()) == nullptr) return false;
      if (!util::ParseDouble(value, &args->days)) return false;
    } else if (flag == "--scale") {
      if ((value = next()) == nullptr) return false;
      if (!util::ParseDouble(value, &args->scale)) return false;
    } else if (flag == "--seed") {
      if ((value = next()) == nullptr) return false;
      if (!util::ParseUint64(value, &args->seed)) return false;
    } else if (flag == "--cache") {
      if ((value = next()) == nullptr) return false;
      args->cache = value;
    } else if (flag == "--csv") {
      if ((value = next()) == nullptr) return false;
      args->csv = value;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

bool KindFromName(const std::string& name, core::CacheKind* kind) {
  if (name == "xlru") *kind = core::CacheKind::kXlru;
  else if (name == "cafe") *kind = core::CacheKind::kCafe;
  else if (name == "psychic") *kind = core::CacheKind::kPsychic;
  else if (name == "filllru") *kind = core::CacheKind::kFillLru;
  else if (name == "belady") *kind = core::CacheKind::kBelady;
  else return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    return 1;
  }

  trace::ServerProfile profile;
  bool found = false;
  for (const auto& p : trace::PaperServerProfiles(args.scale)) {
    if (p.name == args.server) {
      profile = p;
      found = true;
      break;
    }
  }
  if (!found) {
    std::fprintf(stderr,
                 "unknown server %s (try Africa, Asia, Australia, Europe, NorthAmerica, "
                 "SouthAmerica)\n",
                 args.server.c_str());
    return 1;
  }

  trace::WorkloadConfig workload;
  workload.profile = profile;
  workload.duration_seconds = args.days * 86400.0;
  workload.seed = args.seed;
  trace::Trace trace = trace::WorkloadGenerator(workload).Generate().trace;

  core::CacheConfig config;
  config.chunk_bytes = 2ull << 20;
  config.disk_capacity_chunks =
      static_cast<uint64_t>(args.disk_gib * 1024.0 * 1024.0 * 1024.0 /
                            static_cast<double>(config.chunk_bytes));
  config.alpha_f2r = args.alpha;

  std::printf("Server %s: %zu requests over %.1f days, disk %.1f GiB (%llu chunks), alpha=%.2f\n\n",
              profile.name.c_str(), trace.requests.size(), args.days, args.disk_gib,
              static_cast<unsigned long long>(config.disk_capacity_chunks), args.alpha);

  std::vector<core::CacheKind> kinds;
  if (args.cache.empty()) {
    kinds = {core::CacheKind::kXlru, core::CacheKind::kCafe, core::CacheKind::kPsychic};
  } else {
    core::CacheKind kind;
    if (!KindFromName(args.cache, &kind)) {
      std::fprintf(stderr, "unknown cache %s\n", args.cache.c_str());
      return 1;
    }
    kinds = {kind};
  }

  util::TextTable table({"cache", "efficiency", "ingress %", "redirect %", "evictions"});
  std::vector<sim::ReplayResult> results;
  for (auto kind : kinds) {
    auto cache = core::MakeCache(kind, config);
    sim::ReplayResult result = sim::Replay(*cache, trace);
    table.AddRow({result.cache_name, util::FormatPercent(result.efficiency),
                  util::FormatPercent(result.ingress_fraction),
                  util::FormatPercent(result.redirect_fraction),
                  std::to_string(result.steady.evicted_chunks)});
    results.push_back(std::move(result));
  }
  std::printf("%s", table.ToString().c_str());

  if (!args.csv.empty() && !results.empty()) {
    std::ofstream out(args.csv);
    out << "hour,cache,requested_bytes,served_bytes,redirected_bytes,filled_bytes\n";
    for (const auto& r : results) {
      for (size_t h = 0; h < r.series.size(); ++h) {
        out << h << "," << r.cache_name << "," << r.series[h].requested_bytes << ","
            << r.series[h].served_bytes << "," << r.series[h].redirected_bytes << ","
            << r.series[h].filled_bytes << "\n";
      }
    }
    std::printf("\nHourly series written to %s\n", args.csv.c_str());
  }
  return 0;
}
