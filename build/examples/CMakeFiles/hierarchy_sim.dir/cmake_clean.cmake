file(REMOVE_RECURSE
  "CMakeFiles/hierarchy_sim.dir/hierarchy_sim.cpp.o"
  "CMakeFiles/hierarchy_sim.dir/hierarchy_sim.cpp.o.d"
  "hierarchy_sim"
  "hierarchy_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hierarchy_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
