# Empty dependencies file for hierarchy_sim.
# This may be replaced when dependencies are built.
