file(REMOVE_RECURSE
  "CMakeFiles/edge_server_sim.dir/edge_server_sim.cpp.o"
  "CMakeFiles/edge_server_sim.dir/edge_server_sim.cpp.o.d"
  "edge_server_sim"
  "edge_server_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_server_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
