# Empty dependencies file for edge_server_sim.
# This may be replaced when dependencies are built.
