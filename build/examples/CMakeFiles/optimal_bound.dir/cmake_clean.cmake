file(REMOVE_RECURSE
  "CMakeFiles/optimal_bound.dir/optimal_bound.cpp.o"
  "CMakeFiles/optimal_bound.dir/optimal_bound.cpp.o.d"
  "optimal_bound"
  "optimal_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimal_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
