# Empty dependencies file for optimal_bound.
# This may be replaced when dependencies are built.
