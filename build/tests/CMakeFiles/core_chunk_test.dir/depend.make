# Empty dependencies file for core_chunk_test.
# This may be replaced when dependencies are built.
