file(REMOVE_RECURSE
  "CMakeFiles/core_chunk_test.dir/core_chunk_test.cc.o"
  "CMakeFiles/core_chunk_test.dir/core_chunk_test.cc.o.d"
  "core_chunk_test"
  "core_chunk_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_chunk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
