file(REMOVE_RECURSE
  "CMakeFiles/core_xlru_test.dir/core_xlru_test.cc.o"
  "CMakeFiles/core_xlru_test.dir/core_xlru_test.cc.o.d"
  "core_xlru_test"
  "core_xlru_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_xlru_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
