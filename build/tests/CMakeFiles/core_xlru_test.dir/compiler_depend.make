# Empty compiler generated dependencies file for core_xlru_test.
# This may be replaced when dependencies are built.
