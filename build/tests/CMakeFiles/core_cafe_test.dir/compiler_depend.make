# Empty compiler generated dependencies file for core_cafe_test.
# This may be replaced when dependencies are built.
