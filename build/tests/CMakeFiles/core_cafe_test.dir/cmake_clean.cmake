file(REMOVE_RECURSE
  "CMakeFiles/core_cafe_test.dir/core_cafe_test.cc.o"
  "CMakeFiles/core_cafe_test.dir/core_cafe_test.cc.o.d"
  "core_cafe_test"
  "core_cafe_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_cafe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
