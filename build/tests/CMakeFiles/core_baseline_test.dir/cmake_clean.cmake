file(REMOVE_RECURSE
  "CMakeFiles/core_baseline_test.dir/core_baseline_test.cc.o"
  "CMakeFiles/core_baseline_test.dir/core_baseline_test.cc.o.d"
  "core_baseline_test"
  "core_baseline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_baseline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
