# Empty compiler generated dependencies file for trace_downsample_test.
# This may be replaced when dependencies are built.
