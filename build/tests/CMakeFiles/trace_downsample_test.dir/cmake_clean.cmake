file(REMOVE_RECURSE
  "CMakeFiles/trace_downsample_test.dir/trace_downsample_test.cc.o"
  "CMakeFiles/trace_downsample_test.dir/trace_downsample_test.cc.o.d"
  "trace_downsample_test"
  "trace_downsample_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_downsample_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
