# Empty dependencies file for core_adaptive_alpha_test.
# This may be replaced when dependencies are built.
