file(REMOVE_RECURSE
  "CMakeFiles/integration_caches_test.dir/integration_caches_test.cc.o"
  "CMakeFiles/integration_caches_test.dir/integration_caches_test.cc.o.d"
  "integration_caches_test"
  "integration_caches_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_caches_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
