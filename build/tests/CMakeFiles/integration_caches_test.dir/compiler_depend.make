# Empty compiler generated dependencies file for integration_caches_test.
# This may be replaced when dependencies are built.
