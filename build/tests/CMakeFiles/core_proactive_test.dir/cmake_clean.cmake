file(REMOVE_RECURSE
  "CMakeFiles/core_proactive_test.dir/core_proactive_test.cc.o"
  "CMakeFiles/core_proactive_test.dir/core_proactive_test.cc.o.d"
  "core_proactive_test"
  "core_proactive_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_proactive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
