# Empty dependencies file for core_proactive_test.
# This may be replaced when dependencies are built.
