file(REMOVE_RECURSE
  "CMakeFiles/util_str_util_test.dir/util_str_util_test.cc.o"
  "CMakeFiles/util_str_util_test.dir/util_str_util_test.cc.o.d"
  "util_str_util_test"
  "util_str_util_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_str_util_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
