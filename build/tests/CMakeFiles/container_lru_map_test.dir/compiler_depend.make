# Empty compiler generated dependencies file for container_lru_map_test.
# This may be replaced when dependencies are built.
