file(REMOVE_RECURSE
  "CMakeFiles/container_lru_map_test.dir/container_lru_map_test.cc.o"
  "CMakeFiles/container_lru_map_test.dir/container_lru_map_test.cc.o.d"
  "container_lru_map_test"
  "container_lru_map_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/container_lru_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
