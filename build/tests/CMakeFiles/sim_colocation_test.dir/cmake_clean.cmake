file(REMOVE_RECURSE
  "CMakeFiles/sim_colocation_test.dir/sim_colocation_test.cc.o"
  "CMakeFiles/sim_colocation_test.dir/sim_colocation_test.cc.o.d"
  "sim_colocation_test"
  "sim_colocation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_colocation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
