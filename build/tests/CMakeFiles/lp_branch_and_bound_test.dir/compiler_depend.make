# Empty compiler generated dependencies file for lp_branch_and_bound_test.
# This may be replaced when dependencies are built.
