file(REMOVE_RECURSE
  "CMakeFiles/lp_branch_and_bound_test.dir/lp_branch_and_bound_test.cc.o"
  "CMakeFiles/lp_branch_and_bound_test.dir/lp_branch_and_bound_test.cc.o.d"
  "lp_branch_and_bound_test"
  "lp_branch_and_bound_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lp_branch_and_bound_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
