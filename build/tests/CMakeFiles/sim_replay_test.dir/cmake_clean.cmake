file(REMOVE_RECURSE
  "CMakeFiles/sim_replay_test.dir/sim_replay_test.cc.o"
  "CMakeFiles/sim_replay_test.dir/sim_replay_test.cc.o.d"
  "sim_replay_test"
  "sim_replay_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_replay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
