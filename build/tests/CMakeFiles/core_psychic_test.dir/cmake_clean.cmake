file(REMOVE_RECURSE
  "CMakeFiles/core_psychic_test.dir/core_psychic_test.cc.o"
  "CMakeFiles/core_psychic_test.dir/core_psychic_test.cc.o.d"
  "core_psychic_test"
  "core_psychic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_psychic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
