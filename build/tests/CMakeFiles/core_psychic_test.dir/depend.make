# Empty dependencies file for core_psychic_test.
# This may be replaced when dependencies are built.
