file(REMOVE_RECURSE
  "CMakeFiles/container_ordered_key_set_test.dir/container_ordered_key_set_test.cc.o"
  "CMakeFiles/container_ordered_key_set_test.dir/container_ordered_key_set_test.cc.o.d"
  "container_ordered_key_set_test"
  "container_ordered_key_set_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/container_ordered_key_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
