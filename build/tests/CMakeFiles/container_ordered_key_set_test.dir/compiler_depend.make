# Empty compiler generated dependencies file for container_ordered_key_set_test.
# This may be replaced when dependencies are built.
