file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_optimal_vs_psychic.dir/bench_fig2_optimal_vs_psychic.cc.o"
  "CMakeFiles/bench_fig2_optimal_vs_psychic.dir/bench_fig2_optimal_vs_psychic.cc.o.d"
  "bench_fig2_optimal_vs_psychic"
  "bench_fig2_optimal_vs_psychic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_optimal_vs_psychic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
