# Empty dependencies file for bench_fig2_optimal_vs_psychic.
# This may be replaced when dependencies are built.
