file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_operating_points.dir/bench_fig5_operating_points.cc.o"
  "CMakeFiles/bench_fig5_operating_points.dir/bench_fig5_operating_points.cc.o.d"
  "bench_fig5_operating_points"
  "bench_fig5_operating_points.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_operating_points.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
