# Empty dependencies file for bench_fig7_six_servers.
# This may be replaced when dependencies are built.
