# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for vcdn_bench_common.
