# Empty dependencies file for vcdn_bench_common.
# This may be replaced when dependencies are built.
