file(REMOVE_RECURSE
  "CMakeFiles/vcdn_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/vcdn_bench_common.dir/bench_common.cc.o.d"
  "libvcdn_bench_common.a"
  "libvcdn_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcdn_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
