file(REMOVE_RECURSE
  "libvcdn_bench_common.a"
)
