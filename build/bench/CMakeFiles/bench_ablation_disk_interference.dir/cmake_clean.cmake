file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_disk_interference.dir/bench_ablation_disk_interference.cc.o"
  "CMakeFiles/bench_ablation_disk_interference.dir/bench_ablation_disk_interference.cc.o.d"
  "bench_ablation_disk_interference"
  "bench_ablation_disk_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_disk_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
