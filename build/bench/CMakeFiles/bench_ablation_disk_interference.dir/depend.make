# Empty dependencies file for bench_ablation_disk_interference.
# This may be replaced when dependencies are built.
