file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_colocation.dir/bench_ablation_colocation.cc.o"
  "CMakeFiles/bench_ablation_colocation.dir/bench_ablation_colocation.cc.o.d"
  "bench_ablation_colocation"
  "bench_ablation_colocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_colocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
