file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cafe.dir/bench_ablation_cafe.cc.o"
  "CMakeFiles/bench_ablation_cafe.dir/bench_ablation_cafe.cc.o.d"
  "bench_ablation_cafe"
  "bench_ablation_cafe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cafe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
