# Empty compiler generated dependencies file for bench_ablation_cafe.
# This may be replaced when dependencies are built.
