file(REMOVE_RECURSE
  "libvcdn_sim.a"
)
