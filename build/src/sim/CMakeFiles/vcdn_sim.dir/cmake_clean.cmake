file(REMOVE_RECURSE
  "CMakeFiles/vcdn_sim.dir/colocation.cc.o"
  "CMakeFiles/vcdn_sim.dir/colocation.cc.o.d"
  "CMakeFiles/vcdn_sim.dir/hierarchy.cc.o"
  "CMakeFiles/vcdn_sim.dir/hierarchy.cc.o.d"
  "CMakeFiles/vcdn_sim.dir/metrics.cc.o"
  "CMakeFiles/vcdn_sim.dir/metrics.cc.o.d"
  "CMakeFiles/vcdn_sim.dir/replay.cc.o"
  "CMakeFiles/vcdn_sim.dir/replay.cc.o.d"
  "libvcdn_sim.a"
  "libvcdn_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcdn_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
