# Empty compiler generated dependencies file for vcdn_sim.
# This may be replaced when dependencies are built.
