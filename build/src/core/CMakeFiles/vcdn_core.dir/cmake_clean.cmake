file(REMOVE_RECURSE
  "CMakeFiles/vcdn_core.dir/adaptive_alpha.cc.o"
  "CMakeFiles/vcdn_core.dir/adaptive_alpha.cc.o.d"
  "CMakeFiles/vcdn_core.dir/baseline_caches.cc.o"
  "CMakeFiles/vcdn_core.dir/baseline_caches.cc.o.d"
  "CMakeFiles/vcdn_core.dir/cache_factory.cc.o"
  "CMakeFiles/vcdn_core.dir/cache_factory.cc.o.d"
  "CMakeFiles/vcdn_core.dir/cafe_cache.cc.o"
  "CMakeFiles/vcdn_core.dir/cafe_cache.cc.o.d"
  "CMakeFiles/vcdn_core.dir/optimal_cache.cc.o"
  "CMakeFiles/vcdn_core.dir/optimal_cache.cc.o.d"
  "CMakeFiles/vcdn_core.dir/psychic_cache.cc.o"
  "CMakeFiles/vcdn_core.dir/psychic_cache.cc.o.d"
  "CMakeFiles/vcdn_core.dir/xlru_cache.cc.o"
  "CMakeFiles/vcdn_core.dir/xlru_cache.cc.o.d"
  "libvcdn_core.a"
  "libvcdn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcdn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
