file(REMOVE_RECURSE
  "libvcdn_core.a"
)
