# Empty compiler generated dependencies file for vcdn_core.
# This may be replaced when dependencies are built.
