
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive_alpha.cc" "src/core/CMakeFiles/vcdn_core.dir/adaptive_alpha.cc.o" "gcc" "src/core/CMakeFiles/vcdn_core.dir/adaptive_alpha.cc.o.d"
  "/root/repo/src/core/baseline_caches.cc" "src/core/CMakeFiles/vcdn_core.dir/baseline_caches.cc.o" "gcc" "src/core/CMakeFiles/vcdn_core.dir/baseline_caches.cc.o.d"
  "/root/repo/src/core/cache_factory.cc" "src/core/CMakeFiles/vcdn_core.dir/cache_factory.cc.o" "gcc" "src/core/CMakeFiles/vcdn_core.dir/cache_factory.cc.o.d"
  "/root/repo/src/core/cafe_cache.cc" "src/core/CMakeFiles/vcdn_core.dir/cafe_cache.cc.o" "gcc" "src/core/CMakeFiles/vcdn_core.dir/cafe_cache.cc.o.d"
  "/root/repo/src/core/optimal_cache.cc" "src/core/CMakeFiles/vcdn_core.dir/optimal_cache.cc.o" "gcc" "src/core/CMakeFiles/vcdn_core.dir/optimal_cache.cc.o.d"
  "/root/repo/src/core/psychic_cache.cc" "src/core/CMakeFiles/vcdn_core.dir/psychic_cache.cc.o" "gcc" "src/core/CMakeFiles/vcdn_core.dir/psychic_cache.cc.o.d"
  "/root/repo/src/core/xlru_cache.cc" "src/core/CMakeFiles/vcdn_core.dir/xlru_cache.cc.o" "gcc" "src/core/CMakeFiles/vcdn_core.dir/xlru_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lp/CMakeFiles/vcdn_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/vcdn_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vcdn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
