# Empty compiler generated dependencies file for vcdn_lp.
# This may be replaced when dependencies are built.
