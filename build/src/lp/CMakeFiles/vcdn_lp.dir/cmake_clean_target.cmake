file(REMOVE_RECURSE
  "libvcdn_lp.a"
)
