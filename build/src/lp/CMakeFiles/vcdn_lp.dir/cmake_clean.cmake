file(REMOVE_RECURSE
  "CMakeFiles/vcdn_lp.dir/branch_and_bound.cc.o"
  "CMakeFiles/vcdn_lp.dir/branch_and_bound.cc.o.d"
  "CMakeFiles/vcdn_lp.dir/model.cc.o"
  "CMakeFiles/vcdn_lp.dir/model.cc.o.d"
  "CMakeFiles/vcdn_lp.dir/simplex.cc.o"
  "CMakeFiles/vcdn_lp.dir/simplex.cc.o.d"
  "libvcdn_lp.a"
  "libvcdn_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcdn_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
