file(REMOVE_RECURSE
  "CMakeFiles/vcdn_util.dir/distributions.cc.o"
  "CMakeFiles/vcdn_util.dir/distributions.cc.o.d"
  "CMakeFiles/vcdn_util.dir/rng.cc.o"
  "CMakeFiles/vcdn_util.dir/rng.cc.o.d"
  "CMakeFiles/vcdn_util.dir/stats.cc.o"
  "CMakeFiles/vcdn_util.dir/stats.cc.o.d"
  "CMakeFiles/vcdn_util.dir/status.cc.o"
  "CMakeFiles/vcdn_util.dir/status.cc.o.d"
  "CMakeFiles/vcdn_util.dir/str_util.cc.o"
  "CMakeFiles/vcdn_util.dir/str_util.cc.o.d"
  "libvcdn_util.a"
  "libvcdn_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcdn_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
