# Empty compiler generated dependencies file for vcdn_util.
# This may be replaced when dependencies are built.
