file(REMOVE_RECURSE
  "libvcdn_util.a"
)
