
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/analysis.cc" "src/trace/CMakeFiles/vcdn_trace.dir/analysis.cc.o" "gcc" "src/trace/CMakeFiles/vcdn_trace.dir/analysis.cc.o.d"
  "/root/repo/src/trace/downsample.cc" "src/trace/CMakeFiles/vcdn_trace.dir/downsample.cc.o" "gcc" "src/trace/CMakeFiles/vcdn_trace.dir/downsample.cc.o.d"
  "/root/repo/src/trace/request.cc" "src/trace/CMakeFiles/vcdn_trace.dir/request.cc.o" "gcc" "src/trace/CMakeFiles/vcdn_trace.dir/request.cc.o.d"
  "/root/repo/src/trace/server_profile.cc" "src/trace/CMakeFiles/vcdn_trace.dir/server_profile.cc.o" "gcc" "src/trace/CMakeFiles/vcdn_trace.dir/server_profile.cc.o.d"
  "/root/repo/src/trace/trace_io.cc" "src/trace/CMakeFiles/vcdn_trace.dir/trace_io.cc.o" "gcc" "src/trace/CMakeFiles/vcdn_trace.dir/trace_io.cc.o.d"
  "/root/repo/src/trace/workload_generator.cc" "src/trace/CMakeFiles/vcdn_trace.dir/workload_generator.cc.o" "gcc" "src/trace/CMakeFiles/vcdn_trace.dir/workload_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/vcdn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
