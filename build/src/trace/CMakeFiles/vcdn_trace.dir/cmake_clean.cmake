file(REMOVE_RECURSE
  "CMakeFiles/vcdn_trace.dir/analysis.cc.o"
  "CMakeFiles/vcdn_trace.dir/analysis.cc.o.d"
  "CMakeFiles/vcdn_trace.dir/downsample.cc.o"
  "CMakeFiles/vcdn_trace.dir/downsample.cc.o.d"
  "CMakeFiles/vcdn_trace.dir/request.cc.o"
  "CMakeFiles/vcdn_trace.dir/request.cc.o.d"
  "CMakeFiles/vcdn_trace.dir/server_profile.cc.o"
  "CMakeFiles/vcdn_trace.dir/server_profile.cc.o.d"
  "CMakeFiles/vcdn_trace.dir/trace_io.cc.o"
  "CMakeFiles/vcdn_trace.dir/trace_io.cc.o.d"
  "CMakeFiles/vcdn_trace.dir/workload_generator.cc.o"
  "CMakeFiles/vcdn_trace.dir/workload_generator.cc.o.d"
  "libvcdn_trace.a"
  "libvcdn_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcdn_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
