file(REMOVE_RECURSE
  "libvcdn_trace.a"
)
