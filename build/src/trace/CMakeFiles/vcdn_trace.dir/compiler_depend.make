# Empty compiler generated dependencies file for vcdn_trace.
# This may be replaced when dependencies are built.
