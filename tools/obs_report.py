#!/usr/bin/env python3
"""Diff two observability artifacts into a markdown report.

Usage: obs_report.py A B [--out report.md] [--top 20]

Accepts either artifact kind the benches produce, and both inputs must be the
same kind:

  * --obs-series JSONL (obs::TimeSeriesRecorder::WriteJsonl): a meta header
    line then one line per replay window. The report diffs run metadata field
    by field, total counter deltas, final gauge values, and hdr histogram
    quantiles (count-weighted means over windows).
  * BENCH_hotpath.json (bench_replay_throughput): the report diffs the
    single-thread headlines -- requests/sec, ns/request percentiles,
    allocations, and the hardware-counter columns (IPC, LLC misses) when both
    runs carried them (perf_valid). Missing perf columns are reported as
    absent, never an error: perf_event_open is frequently unavailable in CI.

Pure reporting: always exits 0 on well-formed inputs. The regression *gate*
is tools/check_bench_regression.py; this tool is for humans reading CI
artifacts or comparing two local runs.
"""

import argparse
import json
import sys


def load_series(path):
    meta = {}
    windows = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            doc = json.loads(line)
            if doc.get("type") == "meta":
                meta = doc.get("meta", {})
            elif doc.get("type") == "window":
                windows.append(doc)
    return meta, windows


def detect_kind(path):
    with open(path) as f:
        head = f.read(1)
        f.seek(0)
        if head != "{":
            raise ValueError("%s: not a JSON document" % path)
        first_line = f.readline().strip()
    try:
        doc = json.loads(first_line)
        if doc.get("type") == "meta":
            return "series"
    except json.JSONDecodeError:
        pass  # multi-line document: the BENCH json
    return "bench"


def fmt(value):
    if value is None:
        return "--"
    if isinstance(value, bool):
        return str(value).lower()
    if isinstance(value, float):
        return "%.4g" % value
    return str(value)


def change(a, b):
    if a is None or b is None:
        return "--"
    if not isinstance(a, (int, float)) or not isinstance(b, (int, float)) or a == 0:
        return "" if a == b else "changed"
    return "%+.1f%%" % ((b - a) / a * 100.0)


def meta_section(lines, meta_a, meta_b):
    lines.append("## Run metadata")
    lines.append("")
    lines.append("| field | A | B |")
    lines.append("|---|---|---|")
    for key in sorted(set(meta_a) | set(meta_b)):
        a, b = meta_a.get(key), meta_b.get(key)
        marker = "" if a == b else " **(differs)**"
        lines.append("| %s | %s | %s%s |" % (key, fmt(a), fmt(b), marker))
    lines.append("")


def series_counter_totals(windows):
    totals = {}
    for window in windows:
        for name, delta in window.get("counters", {}).items():
            totals[name] = totals.get(name, 0) + delta
    return totals


def series_hdr_stats(windows):
    """Per-hdr-name: total count and count-weighted mean quantiles."""
    stats = {}
    for window in windows:
        for name, hdr in window.get("hdr", {}).items():
            count = hdr.get("count", 0)
            entry = stats.setdefault(name, {"count": 0, "p50": 0.0, "p99": 0.0})
            entry["count"] += count
            for q in ("p50", "p99"):
                entry[q] += hdr.get(q, 0.0) * count
    for entry in stats.values():
        if entry["count"] > 0:
            entry["p50"] /= entry["count"]
            entry["p99"] /= entry["count"]
    return stats


def report_series(path_a, path_b, top):
    meta_a, windows_a = load_series(path_a)
    meta_b, windows_b = load_series(path_b)
    lines = ["# Time-series diff", "", "A: `%s` (%d windows)" % (path_a, len(windows_a)),
             "B: `%s` (%d windows)" % (path_b, len(windows_b)), ""]
    meta_section(lines, meta_a, meta_b)

    totals_a = series_counter_totals(windows_a)
    totals_b = series_counter_totals(windows_b)
    names = sorted(set(totals_a) | set(totals_b),
                   key=lambda n: -abs(totals_b.get(n, 0) - totals_a.get(n, 0)))
    lines.append("## Counter totals (summed window deltas, top %d movers)" % top)
    lines.append("")
    lines.append("| counter | A | B | change |")
    lines.append("|---|---|---|---|")
    for name in names[:top]:
        a, b = totals_a.get(name), totals_b.get(name)
        lines.append("| %s | %s | %s | %s |" % (name, fmt(a), fmt(b), change(a, b)))
    if len(names) > top:
        lines.append("")
        lines.append("(%d counters unchanged or below the top-%d cut)" % (len(names) - top, top))
    lines.append("")

    gauges_a = windows_a[-1].get("gauges", {}) if windows_a else {}
    gauges_b = windows_b[-1].get("gauges", {}) if windows_b else {}
    if gauges_a or gauges_b:
        lines.append("## Final gauge values")
        lines.append("")
        lines.append("| gauge | A | B | change |")
        lines.append("|---|---|---|---|")
        for name in sorted(set(gauges_a) | set(gauges_b)):
            a, b = gauges_a.get(name), gauges_b.get(name)
            lines.append("| %s | %s | %s | %s |" % (name, fmt(a), fmt(b), change(a, b)))
        lines.append("")

    hdr_a = series_hdr_stats(windows_a)
    hdr_b = series_hdr_stats(windows_b)
    if hdr_a or hdr_b:
        lines.append("## Hdr histograms (count-weighted mean of window quantiles)")
        lines.append("")
        lines.append("| histogram | count A | count B | p50 A | p50 B | p99 A | p99 B |")
        lines.append("|---|---|---|---|---|---|---|")
        for name in sorted(set(hdr_a) | set(hdr_b)):
            a = hdr_a.get(name, {})
            b = hdr_b.get(name, {})
            lines.append("| %s | %s | %s | %s | %s | %s | %s |" % (
                name, fmt(a.get("count")), fmt(b.get("count")),
                fmt(a.get("p50")), fmt(b.get("p50")),
                fmt(a.get("p99")), fmt(b.get("p99"))))
        lines.append("")
    return lines


BENCH_FIELDS = [
    ("requests/sec", "requests_per_sec"),
    ("ns/req p50", "ns_per_request_p50"),
    ("ns/req p99", "ns_per_request_p99"),
    ("allocs/req", "allocs_per_request"),
    ("bytes/req", "bytes_per_request"),
    ("IPC", "ipc"),
    ("LLC miss/req", "llc_misses_per_request"),
    ("branch miss/req", "branch_misses_per_request"),
]


def bench_run(doc, algo, variant):
    return doc.get("single_thread", {}).get(algo, {}).get(variant, {})


def perf_columns_valid(run):
    return bool(run.get("perf_valid", False))


def report_bench(path_a, path_b, top):
    del top  # bench reports are fixed-shape
    with open(path_a) as f:
        doc_a = json.load(f)
    with open(path_b) as f:
        doc_b = json.load(f)
    lines = ["# Bench diff", "", "A: `%s`" % path_a, "B: `%s`" % path_b, ""]
    meta_section(lines, doc_a.get("meta", {}), doc_b.get("meta", {}))

    for algo in sorted(set(doc_a.get("single_thread", {})) | set(doc_b.get("single_thread", {}))):
        for variant in ("flat", "reference"):
            run_a = bench_run(doc_a, algo, variant)
            run_b = bench_run(doc_b, algo, variant)
            if not run_a and not run_b:
                continue
            lines.append("## %s (%s)" % (algo, variant))
            lines.append("")
            lines.append("| metric | A | B | change |")
            lines.append("|---|---|---|---|")
            for label, key in BENCH_FIELDS:
                is_perf = key in ("ipc", "llc_misses_per_request", "branch_misses_per_request")
                if is_perf and not (perf_columns_valid(run_a) and perf_columns_valid(run_b)):
                    # perf_event_open unavailable in at least one run; the
                    # column is absent, not wrong.
                    lines.append("| %s | -- | -- | perf unavailable |" % label)
                    continue
                a, b = run_a.get(key), run_b.get(key)
                lines.append("| %s | %s | %s | %s |" % (label, fmt(a), fmt(b), change(a, b)))
            lines.append("")

    speedup_a = doc_a.get("combined_single_thread_speedup")
    speedup_b = doc_b.get("combined_single_thread_speedup")
    if speedup_a is not None or speedup_b is not None:
        lines.append("Combined single-thread speedup: A %s vs B %s" %
                     (fmt(speedup_a), fmt(speedup_b)))
        lines.append("")
    return lines


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("a")
    parser.add_argument("b")
    parser.add_argument("--out", help="write markdown here instead of stdout")
    parser.add_argument("--top", type=int, default=20, help="counter movers to list")
    args = parser.parse_args()

    kind_a = detect_kind(args.a)
    kind_b = detect_kind(args.b)
    if kind_a != kind_b:
        print("error: cannot diff a %s file against a %s file" % (kind_a, kind_b),
              file=sys.stderr)
        return 2

    if kind_a == "series":
        lines = report_series(args.a, args.b, args.top)
    else:
        lines = report_bench(args.a, args.b, args.top)

    text = "\n".join(lines) + "\n"
    if args.out:
        with open(args.out, "w") as f:
            f.write(text)
        print("wrote %s" % args.out)
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
