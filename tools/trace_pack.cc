// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// trace_pack: packs traces into the mmap-replayable VCDNTRS2 format
// (src/trace/trace_file.h, docs/TRACE_FORMAT.md).
//
//   trace_pack --generate six|europe [--scale X] [--days D] [--seed S] \
//              --out fleet.vtrs [--verify]
//   trace_pack --csv edge0.csv,edge1.csv --out fleet.vtrs [--verify]
//   trace_pack --bin edge0.trc,edge1.trc --out fleet.vtrs [--verify]
//
// Exactly one input selector (--generate / --csv / --bin); each CSV or
// VCDNTRC1 file becomes one server section, in argument order. --generate
// streams window by window straight into the writer -- a full-scale
// month-long fleet packs with peak RSS independent of trace length, the
// same per-server seeding the benches use (util::SplitSeed(seed, i)).
//
// --verify re-opens the packed file, runs the eager full scan
// (MmapTrace::Validate) and compares record count and FNV-1a digest against
// the digest accumulated from the source while packing. Exit status 0 only
// when the round trip is bit-exact.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/trace/server_profile.h"
#include "src/trace/trace_file.h"
#include "src/trace/trace_io.h"
#include "src/trace/workload_generator.h"
#include "src/util/rng.h"
#include "src/util/status.h"
#include "src/util/str_util.h"

namespace {

using vcdn::trace::RequestDigest;
using vcdn::trace::TraceFileWriter;

[[noreturn]] void Usage(const char* error) {
  if (error != nullptr) {
    std::fprintf(stderr, "error: %s\n\n", error);
  }
  std::fprintf(stderr,
               "usage: trace_pack --out FILE (--generate six|europe | --csv F[,F...] |"
               " --bin F[,F...])\n"
               "                  [--scale X] [--days D] [--seed S] [--verify]\n"
               "\n"
               "Packs traces into the mmap-replayable VCDNTRS2 format. --scale/--days/\n"
               "--seed shape the synthetic workload (defaults 0.25 / 30 / 1, matching\n"
               "the benches); --verify re-opens the output and proves the round trip\n"
               "bit-exact against the source digest.\n");
  std::exit(2);
}

std::vector<std::string> SplitCommas(const std::string& list) {
  std::vector<std::string> out;
  size_t begin = 0;
  while (begin <= list.size()) {
    const size_t comma = list.find(',', begin);
    const size_t end = comma == std::string::npos ? list.size() : comma;
    if (end > begin) {
      out.push_back(list.substr(begin, end - begin));
    }
    if (comma == std::string::npos) {
      break;
    }
    begin = comma + 1;
  }
  return out;
}

void DieOnError(const vcdn::util::Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

struct Options {
  std::string out;
  std::string generate;  // "six" or "europe"
  std::vector<std::string> csv;
  std::vector<std::string> bin;
  double scale = 0.25;
  double days = 30.0;
  uint64_t seed = 1;
  bool verify = false;
};

Options ParseArgs(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::string msg = "flag '" + arg + "' is missing its value";
        Usage(msg.c_str());
      }
      return argv[++i];
    };
    if (arg == "--out") {
      opt.out = value();
    } else if (arg == "--generate") {
      opt.generate = value();
      if (opt.generate != "six" && opt.generate != "europe") {
        Usage("--generate takes 'six' or 'europe'");
      }
    } else if (arg == "--csv") {
      opt.csv = SplitCommas(value());
    } else if (arg == "--bin") {
      opt.bin = SplitCommas(value());
    } else if (arg == "--scale" || arg == "--days") {
      double parsed = 0.0;
      if (!vcdn::util::ParseDouble(value(), &parsed) || !std::isfinite(parsed) || parsed <= 0.0) {
        Usage("--scale/--days need a positive number");
      }
      (arg == "--scale" ? opt.scale : opt.days) = parsed;
    } else if (arg == "--seed") {
      uint64_t parsed = 0;
      if (!vcdn::util::ParseUint64(value(), &parsed)) {
        Usage("--seed needs an unsigned integer");
      }
      opt.seed = parsed;
    } else if (arg == "--verify") {
      opt.verify = true;
    } else {
      std::string msg = "unknown argument '" + arg + "'";
      Usage(msg.c_str());
    }
  }
  if (opt.out.empty()) {
    Usage("--out is required");
  }
  const int selectors = (!opt.generate.empty()) + (!opt.csv.empty()) + (!opt.bin.empty());
  if (selectors != 1) {
    Usage("exactly one of --generate / --csv / --bin is required");
  }
  return opt;
}

// Streams the synthetic fleet into the writer without ever materializing a
// trace; folds every record into `digest` on the way through.
void PackGenerated(const Options& opt, TraceFileWriter& writer, RequestDigest& digest) {
  std::vector<vcdn::trace::ServerProfile> profiles;
  if (opt.generate == "six") {
    profiles = vcdn::trace::PaperServerProfiles(opt.scale);
  } else {
    profiles = {vcdn::trace::EuropeProfile(opt.scale)};
  }
  for (size_t i = 0; i < profiles.size(); ++i) {
    vcdn::trace::WorkloadConfig config;
    config.profile = profiles[i];
    config.seed = vcdn::util::SplitSeed(opt.seed, i);
    config.duration_seconds = opt.days * 86400.0;
    vcdn::trace::WindowedWorkload windows(config);
    DieOnError(writer.BeginServer(windows.duration(), windows.catalog().videos.size()),
               "begin server");
    std::vector<vcdn::trace::Request> window;
    uint64_t records = 0;
    while (true) {
      window.clear();
      if (!windows.NextWindow(&window)) {
        break;
      }
      DieOnError(writer.Append(window.data(), window.size()), "append window");
      digest.Fold(window.data(), window.size());
      records += window.size();
    }
    std::printf("  server %zu (%s): %llu requests, catalog %zu\n", i, profiles[i].name.c_str(),
                static_cast<unsigned long long>(records), windows.catalog().videos.size());
  }
}

void PackFiles(const std::vector<std::string>& paths, bool csv, TraceFileWriter& writer,
               RequestDigest& digest) {
  for (const std::string& path : paths) {
    vcdn::util::Result<vcdn::trace::Trace> read =
        csv ? vcdn::trace::ReadCsvFile(path) : vcdn::trace::ReadBinaryFile(path);
    DieOnError(read.status(), path.c_str());
    const vcdn::trace::Trace& trace = read.value();
    DieOnError(writer.AppendTrace(trace), path.c_str());
    digest.Fold(trace.requests.data(), trace.requests.size());
    std::printf("  %s: %zu requests, duration %.0fs\n", path.c_str(), trace.requests.size(),
                trace.duration);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = ParseArgs(argc, argv);

  const size_t server_count = !opt.generate.empty()
                                  ? (opt.generate == "six" ? size_t{6} : size_t{1})
                                  : (!opt.csv.empty() ? opt.csv.size() : opt.bin.size());
  std::printf("packing %zu server section(s) -> %s\n", server_count, opt.out.c_str());

  TraceFileWriter writer;
  DieOnError(writer.Open(opt.out, server_count), opt.out.c_str());
  RequestDigest digest;
  if (!opt.generate.empty()) {
    PackGenerated(opt, writer, digest);
  } else {
    PackFiles(!opt.csv.empty() ? opt.csv : opt.bin, !opt.csv.empty(), writer, digest);
  }
  DieOnError(writer.Finish(), "finish");
  std::printf("packed %llu requests, source digest %016llx\n",
              static_cast<unsigned long long>(digest.count()),
              static_cast<unsigned long long>(digest.value()));

  if (opt.verify) {
    vcdn::util::Result<vcdn::trace::MmapTrace> packed = vcdn::trace::MmapTrace::Open(opt.out);
    DieOnError(packed.status(), "reopen for verify");
    if (packed.value().total_records() != digest.count()) {
      std::fprintf(stderr, "verify FAILED: packed %llu records, source had %llu\n",
                   static_cast<unsigned long long>(packed.value().total_records()),
                   static_cast<unsigned long long>(digest.count()));
      return 1;
    }
    vcdn::util::Result<uint64_t> scanned = packed.value().Validate();
    DieOnError(scanned.status(), "full-scan verify");
    if (scanned.value() != digest.value()) {
      std::fprintf(stderr, "verify FAILED: packed digest %016llx != source %016llx\n",
                   static_cast<unsigned long long>(scanned.value()),
                   static_cast<unsigned long long>(digest.value()));
      return 1;
    }
    std::printf("verify OK: digest %016llx over %llu records\n",
                static_cast<unsigned long long>(scanned.value()),
                static_cast<unsigned long long>(digest.count()));
  }
  return 0;
}
