// Copyright (c) 2026 libvcdn authors. Apache-2.0 license.
//
// vcdn edge-server daemon: net::EdgeServer as a standalone process. Binds
// a TCP port (0 = ephemeral), serves the length-prefixed protocol of
// src/net/protocol.h until SIGINT/SIGTERM, then drains gracefully and
// prints a serving summary -- per-shard outcome digests plus the
// net.server.* counters -- so a driving script can assert clean shutdown
// and exact accounting (.github/workflows/ci.yml "net smoke" does exactly
// that with bench_net_loopback --connect).
//
// The bound address is announced on the first stdout line:
//
//   vcdn_edge_server listening on 127.0.0.1 port 46523
//
// so callers using an ephemeral port can scrape it (awk '/listening
// on/{print $NF}').
//
// Flag parsing fails FAST in the bench_common style: unknown flags,
// missing values and unparsable numbers name the offender on stderr and
// exit(2) -- a daemon silently running a default config would invalidate
// whatever experiment is driving it.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "src/core/cache_factory.h"
#include "src/exec/thread_pool.h"
#include "src/net/edge_server.h"
#include "src/obs/metrics.h"
#include "src/util/str_util.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

[[noreturn]] void UsageError(const char* format, const char* a, const char* b = "") {
  std::fprintf(stderr, "error: ");
  std::fprintf(stderr, format, a, b);
  std::fprintf(stderr,
               "\nusage: edge_server [--address A] [--port N] [--shards N] [--threads N]\n"
               "                   [--cache xlru|cafe|fill-lru|fill-lfu] [--disk-chunks N]\n"
               "                   [--alpha F] [--server-clock 0|1] [--idle-timeout-ms N]\n"
               "                   [--flight N]\n");
  std::exit(2);
}

uint64_t ParseCount(const char* value, const char* flag) {
  uint64_t parsed = 0;
  if (!vcdn::util::ParseUint64(value, &parsed)) {
    UsageError("invalid value '%s' for flag '%s'", value, flag);
  }
  return parsed;
}

vcdn::core::CacheKind ParseCacheKind(const std::string& name) {
  using vcdn::core::CacheKind;
  if (name == "xlru") return CacheKind::kXlru;
  if (name == "cafe") return CacheKind::kCafe;
  if (name == "fill-lru") return CacheKind::kFillLru;
  if (name == "fill-lfu") return CacheKind::kFillLfu;
  // Psychic/Belady are offline policies (they Prepare on the full future
  // trace); a live daemon has no future to consult.
  UsageError("unknown cache kind '%s' (want xlru|cafe|fill-lru|fill-lfu)", name.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vcdn;

  std::string address = "127.0.0.1";
  uint64_t port = 0;
  uint64_t shards = 1;
  uint64_t threads = 0;  // 0 = hardware concurrency
  std::string cache_name = "cafe";
  uint64_t disk_chunks = 4096;
  double alpha = 1.0;
  uint64_t server_clock = 0;
  uint64_t idle_timeout_ms = 30000;
  uint64_t flight = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      UsageError("unexpected positional argument '%s'", argv[i]);
    }
    if (i + 1 >= argc) {
      UsageError("flag '%s' is missing its value", argv[i]);
    }
    const char* value = argv[++i];
    if (arg == "--address") {
      address = value;
    } else if (arg == "--port") {
      port = ParseCount(value, "--port");
      if (port > 65535) {
        UsageError("invalid value '%s' for flag '%s'", value, "--port");
      }
    } else if (arg == "--shards") {
      shards = ParseCount(value, "--shards");
      if (shards == 0) shards = 1;
    } else if (arg == "--threads") {
      threads = ParseCount(value, "--threads");
    } else if (arg == "--cache") {
      cache_name = value;
    } else if (arg == "--disk-chunks") {
      disk_chunks = ParseCount(value, "--disk-chunks");
      if (disk_chunks == 0) {
        UsageError("invalid value '%s' for flag '%s'", value, "--disk-chunks");
      }
    } else if (arg == "--alpha") {
      char* end = nullptr;
      alpha = std::strtod(value, &end);
      if (end == value || *end != '\0' || alpha <= 0.0) {
        UsageError("invalid value '%s' for flag '%s'", value, "--alpha");
      }
    } else if (arg == "--server-clock") {
      server_clock = ParseCount(value, "--server-clock");
    } else if (arg == "--idle-timeout-ms") {
      idle_timeout_ms = ParseCount(value, "--idle-timeout-ms");
    } else if (arg == "--flight") {
      flight = ParseCount(value, "--flight");
    } else {
      UsageError("unknown flag '%s'", arg.c_str(), "");
    }
  }

  const size_t pool_threads =
      threads > 0 ? static_cast<size_t>(threads)
                  : std::max<size_t>(1, std::thread::hardware_concurrency());

  obs::MetricsRegistry registry;
  exec::ThreadPool pool(pool_threads);
  net::EdgeServerOptions options;
  options.address = address;
  options.port = static_cast<uint16_t>(port);
  options.num_shards = static_cast<size_t>(shards);
  options.cache_kind = ParseCacheKind(cache_name);
  options.cache_config.disk_capacity_chunks = disk_chunks;
  options.cache_config.alpha_f2r = alpha;
  options.use_client_time = server_clock == 0;
  options.idle_timeout = std::chrono::milliseconds(idle_timeout_ms);
  options.metrics = &registry;
  options.flight_recorder_capacity = static_cast<size_t>(flight);

  net::EdgeServer server(pool, options);
  util::Status status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "error: start failed: %s\n", std::string(status.message()).c_str());
    return 1;
  }

  std::printf("vcdn_edge_server listening on %s port %u\n", address.c_str(), server.port());
  std::printf("cache=%s disk_chunks=%llu alpha=%.2f shards=%llu threads=%zu clock=%s\n",
              std::string(core::CacheKindName(options.cache_kind)).c_str(),
              static_cast<unsigned long long>(disk_chunks), alpha,
              static_cast<unsigned long long>(shards), pool_threads,
              options.use_client_time ? "client" : "server");
  std::fflush(stdout);

  struct sigaction action {};
  action.sa_handler = HandleSignal;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);

  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::printf("shutting down (signal)\n");
  server.Stop();
  pool.Shutdown();

  // Serving summary: exact accounting plus the per-shard digests, in the
  // grep-friendly "key value" shape the CI smoke asserts on.
  const uint64_t requests = registry.GetCounter("net.server.requests_total").value();
  const uint64_t responses = registry.GetCounter("net.server.responses_total").value();
  std::printf("served requests %llu responses %llu protocol_errors %llu\n",
              static_cast<unsigned long long>(requests),
              static_cast<unsigned long long>(responses),
              static_cast<unsigned long long>(
                  registry.GetCounter("net.server.protocol_errors_total").value()));
  for (size_t s = 0; s < server.num_shards(); ++s) {
    net::EdgeServer::DigestSnapshot digest = server.ShardDigest(s);
    std::printf("shard %zu digest %016llx count %llu\n", s,
                static_cast<unsigned long long>(digest.value),
                static_cast<unsigned long long>(digest.count));
  }
  std::printf("clean shutdown\n");
  return requests == responses ? 0 : 1;
}
