#!/usr/bin/env python3
"""Compare a fresh bench JSON against the committed baseline.

Usage: check_bench_regression.py BASELINE_JSON FRESH_JSON [--threshold 0.25]

Guards the MEDIAN-of-repeats throughput headlines of the tracked bench
baselines -- BENCH_hotpath.json (bench_replay_throughput) and
BENCH_net.json (bench_net_loopback); the profile is picked from the JSON's
own "bench" field, so both gates share this script:

  * exits 1 with a GitHub ::error annotation when any flat single-thread
    headline (xLRU or Cafe requests/sec) regressed by more than the
    threshold (default 25%);
  * emits a ::notice annotation -- and still exits 0 -- when a headline
    improved by more than the threshold, so baseline refreshes don't get
    forgotten;
  * skips the comparison (exit 0, ::warning) when the two files measured
    different workloads (scale / days / seed / request count), because a
    ratio across different workloads is meaningless.

Thresholded on the median headline rather than a single run so one noisy CI
neighbor can't fail the build; the raw per-repeat arrays stay in the JSON
for anyone chasing dispersion.

Tolerant of schema growth by construction: fields are read by explicit path
(dig), so new keys in either file -- "meta", the hardware-counter columns
(perf_valid / ipc / llc_misses_per_request), future additions -- are simply
ignored by the gate. When BOTH files carry valid hardware counters the IPC
and LLC-miss columns are printed as informational context (never thresholded:
counter availability varies across runners).
"""

import argparse
import json
import sys

# Per-bench gate profiles, keyed by the JSON's "bench" field. Files written
# before the field existed fall back to the hotpath profile.
PROFILES = {
    "bench_replay_throughput": {
        "headlines": [
            ("xLRU flat", ("single_thread", "xLRU", "flat", "requests_per_sec")),
            ("Cafe flat", ("single_thread", "Cafe", "flat", "requests_per_sec")),
        ],
        "workload_keys": ["scale", "days", "chunks_per_paper_tb", "seed", "servers", "requests"],
    },
    "bench_net_loopback": {
        "headlines": [
            ("net loopback", ("throughput", "requests_per_sec")),
        ],
        "workload_keys": ["scale", "seed", "requests", "connections", "pipeline", "shards"],
    },
}


def dig(doc, path):
    for key in path:
        if not isinstance(doc, dict) or key not in doc:
            return None
        doc = doc[key]
    return doc


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--threshold", type=float, default=0.25)
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.fresh) as f:
        fresh = json.load(f)

    base_bench = baseline.get("bench", "bench_replay_throughput")
    fresh_bench = fresh.get("bench", "bench_replay_throughput")
    if base_bench != fresh_bench:
        print(
            "::error::comparing different benches (baseline %s vs fresh %s)"
            % (base_bench, fresh_bench)
        )
        return 1
    profile = PROFILES.get(base_bench)
    if profile is None:
        print("::warning::no gate profile for bench %r; skipping" % base_bench)
        return 0
    headlines = profile["headlines"]
    workload_keys = profile["workload_keys"]

    base_workload = {k: dig(baseline, ("workload", k)) for k in workload_keys}
    fresh_workload = {k: dig(fresh, ("workload", k)) for k in workload_keys}
    if base_workload != fresh_workload:
        print(
            "::warning::bench workloads differ (baseline %s vs fresh %s); "
            "skipping throughput comparison" % (base_workload, fresh_workload)
        )
        return 0

    failed = False
    for label, path in headlines:
        base = dig(baseline, path)
        new = dig(fresh, path)
        if not base or not new:
            print("::warning::%s missing from %s; skipping" % (label, path[-1]))
            continue
        ratio = new / base
        line = "%s: baseline %.0f req/s, fresh %.0f req/s (%.2fx)" % (label, base, new, ratio)
        if ratio < 1.0 - args.threshold:
            print("::error::throughput regression: %s" % line)
            failed = True
        elif ratio > 1.0 + args.threshold:
            print(
                "::notice::throughput improved past the %d%% band: %s -- consider "
                "refreshing the committed BENCH_hotpath.json" % (args.threshold * 100, line)
            )
        else:
            print(line)

        # Informational hardware-counter context, printed only when both runs
        # measured them (perf_event_open is often unavailable on CI runners).
        run_path = path[:-1]
        base_run = dig(baseline, run_path) or {}
        fresh_run = dig(fresh, run_path) or {}
        if base_run.get("perf_valid") and fresh_run.get("perf_valid"):
            print(
                "  hw: IPC %.2f -> %.2f, LLC miss/req %.2f -> %.2f (informational)"
                % (
                    base_run.get("ipc", 0.0),
                    fresh_run.get("ipc", 0.0),
                    base_run.get("llc_misses_per_request", 0.0),
                    fresh_run.get("llc_misses_per_request", 0.0),
                )
            )

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
