#!/usr/bin/env python3
"""Compare a fresh bench JSON against the committed baseline.

Usage: check_bench_regression.py BASELINE_JSON FRESH_JSON [--threshold 0.25]

Guards the MEDIAN-of-repeats throughput headlines of the tracked bench
baselines -- BENCH_hotpath.json (bench_replay_throughput), BENCH_net.json
(bench_net_loopback) and BENCH_scale.json (bench_scale_sweep); the profile
is picked from the JSON's own "bench" field, so every gate shares this
script:

  * exits 1 with a GitHub ::error annotation when any headline regressed by
    more than the threshold (default 25%);
  * emits a ::notice annotation -- and still exits 0 -- when a headline
    improved by more than the threshold, so baseline refreshes don't get
    forgotten;
  * skips the comparison (exit 0, ::warning) when the two files measured
    different workloads (scale / days / seed / request count), because a
    ratio across different workloads is meaningless.

Each headline is compared MEDIAN vs MEDIAN: when the profile names a
per-repeat array, the gate recomputes the lower median from the raw repeats
of BOTH files (the same order-statistic the benches use for their headline
fields) instead of trusting a single stored scalar. When a comparison lands
within 10% of the gate boundary, the min/median/max spread of both repeat
arrays is printed so a borderline verdict can be judged against run-to-run
noise instead of re-running blind.

Tolerant of schema growth by construction: fields are read by explicit path
(dig), so new keys in either file -- "meta", the hardware-counter columns
(perf_valid / ipc / llc_misses_per_request), future additions -- are simply
ignored by the gate. When BOTH files carry valid hardware counters the IPC
and LLC-miss columns are printed as informational context (never thresholded:
counter availability varies across runners).
"""

import argparse
import json
import sys

# Per-bench gate profiles, keyed by the JSON's "bench" field. Files written
# before the field existed fall back to the hotpath profile. Each headline is
# (label, scalar_path, repeats_path_or_None); when the repeats path resolves
# to a non-empty list in a file, its lower median REPLACES the stored scalar
# for that side of the comparison.
PROFILES = {
    "bench_replay_throughput": {
        "headlines": [
            (
                "xLRU flat",
                ("single_thread", "xLRU", "flat", "requests_per_sec"),
                ("single_thread", "xLRU", "repeat_requests_per_sec_flat"),
            ),
            (
                "Cafe flat",
                ("single_thread", "Cafe", "flat", "requests_per_sec"),
                ("single_thread", "Cafe", "repeat_requests_per_sec_flat"),
            ),
        ],
        "workload_keys": ["scale", "days", "chunks_per_paper_tb", "seed", "servers", "requests"],
    },
    "bench_net_loopback": {
        "headlines": [
            ("net loopback", ("throughput", "requests_per_sec"), None),
        ],
        "workload_keys": ["scale", "seed", "requests", "connections", "pipeline", "shards"],
    },
    "bench_scale_sweep": {
        "headlines": [
            (
                "streaming fleet @%s" % scale,
                ("scales", scale, "requests_per_sec"),
                ("scales", scale, "repeat_requests_per_sec"),
            )
            for scale in ("0.25", "0.5", "1")
        ],
        "workload_keys": ["scales", "days", "chunks_per_paper_tb", "seed", "servers", "algorithms"],
    },
}


def dig(doc, path):
    for key in path:
        if not isinstance(doc, dict) or key not in doc:
            return None
        doc = doc[key]
    return doc


def lower_median(values):
    """The benches' headline order statistic: sorted[(n-1)//2]."""
    ordered = sorted(values)
    return ordered[(len(ordered) - 1) // 2]


def headline_value(doc, scalar_path, repeats_path):
    """Median of the raw repeats when available, else the stored scalar."""
    if repeats_path is not None:
        repeats = dig(doc, repeats_path)
        if isinstance(repeats, list) and repeats:
            return lower_median(repeats), repeats
    return dig(doc, scalar_path), None


def spread(values):
    return "min %.0f / median %.0f / max %.0f over %d repeats" % (
        min(values),
        lower_median(values),
        max(values),
        len(values),
    )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--threshold", type=float, default=0.25)
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.fresh) as f:
        fresh = json.load(f)

    base_bench = baseline.get("bench", "bench_replay_throughput")
    fresh_bench = fresh.get("bench", "bench_replay_throughput")
    if base_bench != fresh_bench:
        print(
            "::error::comparing different benches (baseline %s vs fresh %s)"
            % (base_bench, fresh_bench)
        )
        return 1
    profile = PROFILES.get(base_bench)
    if profile is None:
        print("::warning::no gate profile for bench %r; skipping" % base_bench)
        return 0
    headlines = profile["headlines"]
    workload_keys = profile["workload_keys"]

    base_workload = {k: dig(baseline, ("workload", k)) for k in workload_keys}
    fresh_workload = {k: dig(fresh, ("workload", k)) for k in workload_keys}
    if base_workload != fresh_workload:
        print(
            "::warning::bench workloads differ (baseline %s vs fresh %s); "
            "skipping throughput comparison" % (base_workload, fresh_workload)
        )
        return 0

    failed = False
    for label, path, repeats_path in headlines:
        base, base_repeats = headline_value(baseline, path, repeats_path)
        new, fresh_repeats = headline_value(fresh, path, repeats_path)
        if not base or not new:
            print("::warning::%s missing from %s; skipping" % (label, path[-1]))
            continue
        ratio = new / base
        line = "%s: baseline %.0f req/s, fresh %.0f req/s (%.2fx)" % (label, base, new, ratio)
        if ratio < 1.0 - args.threshold:
            print("::error::throughput regression: %s" % line)
            failed = True
        elif ratio > 1.0 + args.threshold:
            print(
                "::notice::throughput improved past the %d%% band: %s -- consider "
                "refreshing the committed baseline JSON" % (args.threshold * 100, line)
            )
        else:
            print(line)

        # Borderline verdicts get the raw dispersion printed: within 10% of
        # either gate boundary, show min/median/max of both repeat arrays so
        # "barely passed" and "barely failed" can be weighed against noise.
        near_gate = (
            abs(ratio - (1.0 - args.threshold)) <= 0.10
            or abs(ratio - (1.0 + args.threshold)) <= 0.10
        )
        if near_gate:
            print("  near the +/-%d%% gate boundary:" % (args.threshold * 100))
            if base_repeats:
                print("    baseline spread: %s" % spread(base_repeats))
            if fresh_repeats:
                print("    fresh spread:    %s" % spread(fresh_repeats))
            if not base_repeats and not fresh_repeats:
                print("    (no per-repeat arrays recorded; re-run with --repeat >= 3)")

        # Informational hardware-counter context, printed only when both runs
        # measured them (perf_event_open is often unavailable on CI runners).
        run_path = path[:-1]
        base_run = dig(baseline, run_path) or {}
        fresh_run = dig(fresh, run_path) or {}
        if base_run.get("perf_valid") and fresh_run.get("perf_valid"):
            print(
                "  hw: IPC %.2f -> %.2f, LLC miss/req %.2f -> %.2f (informational)"
                % (
                    base_run.get("ipc", 0.0),
                    fresh_run.get("ipc", 0.0),
                    base_run.get("llc_misses_per_request", 0.0),
                    fresh_run.get("llc_misses_per_request", 0.0),
                )
            )

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
